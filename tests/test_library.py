"""Tests for the Figure 8 query library and fixtures."""

import pytest

from repro.decomposition import enumerate_plans
from repro.query import (
    PAPER_QUERY_SIZES,
    all_fixture_queries,
    complete_binary_tree,
    cycle_query,
    paper_queries,
    paper_query,
    path_query,
    satellite,
    star_query,
)


class TestPaperQueries:
    def test_all_ten_present(self):
        qs = paper_queries()
        assert set(qs) == set(PAPER_QUERY_SIZES)

    def test_sizes_match_paper(self):
        for name, q in paper_queries().items():
            assert q.k == PAPER_QUERY_SIZES[name], name

    def test_all_connected(self):
        for q in paper_queries().values():
            assert q.is_connected(), q.name

    def test_all_contain_cycles(self):
        # "beyond trees": every Figure 8 query is cyclic
        for name, q in paper_queries().items():
            assert q.num_edges() >= q.k, name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown paper query"):
            paper_query("nonexistent")

    def test_brain1_has_exactly_two_plans(self):
        # Section 6: "brain1 admits two decomposition trees"
        assert len(enumerate_plans(paper_query("brain1"))) == 2

    def test_brain3_longest_cycle_is_8(self):
        plans = enumerate_plans(paper_query("brain3"))
        assert min(p.longest_cycle() for p in plans) == 8


class TestSatellite:
    def test_size(self):
        q = satellite()
        assert q.k == 11
        assert q.num_edges() == 14

    def test_structure_from_figure_2(self):
        q = satellite()
        # 5-cycle a-b-c-d-e
        for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")]:
            assert q.has_edge(a, b)
        # triangle (i, j, k), leaf edge (f, h), cycle (i, f, g)
        assert q.has_edge("i", "j") and q.has_edge("j", "k") and q.has_edge("k", "i")
        assert q.has_edge("f", "h") and q.degree("h") == 1
        assert q.has_edge("i", "f") and q.has_edge("f", "g") and q.has_edge("i", "g")

    def test_no_direct_ac_edge(self):
        # (a, c) appears only as the contraction edge, not in the query
        assert not satellite().has_edge("a", "c")


class TestGenerators:
    def test_cycle_query_lengths(self):
        for length in range(3, 10):
            q = cycle_query(length)
            assert q.k == length and q.num_edges() == length

    def test_cycle_too_short(self):
        with pytest.raises(ValueError):
            cycle_query(2)

    def test_path_query(self):
        q = path_query(6)
        assert q.k == 6 and q.num_edges() == 5

    def test_single_node_path(self):
        q = path_query(1)
        assert q.k == 1 and q.num_edges() == 0

    def test_star_query(self):
        q = star_query(4)
        assert q.k == 5 and q.degree(0) == 4

    def test_complete_binary_tree(self):
        q = complete_binary_tree(2)
        assert q.k == 7 and q.num_edges() == 6

    def test_fixture_list_nonempty(self):
        fixtures = all_fixture_queries()
        assert len(fixtures) >= 15
        names = [q.name for q in fixtures]
        assert "satellite" in names and "brain3" in names
