"""Tests for blocks, contraction and decomposition-tree construction."""

import pytest

from repro.decomposition import (
    CYCLE,
    LEAF,
    SINGLETON,
    ContractionState,
    DecompositionError,
    build_decomposition,
    contract,
    enumerate_plans,
    find_candidate_blocks,
)
from repro.query import (
    QueryGraph,
    cycle_query,
    diamond,
    paper_queries,
    path_query,
    satellite,
    star_query,
)


class TestCandidateDiscovery:
    def test_cycle_query_one_candidate(self):
        state = ContractionState(cycle_query(5))
        cands = find_candidate_blocks(state)
        cycles = [c for c in cands if c.kind == CYCLE]
        assert len(cycles) == 1
        assert len(cycles[0].boundary) == 0

    def test_path_query_two_leaf_candidates(self):
        state = ContractionState(path_query(4))
        cands = find_candidate_blocks(state)
        assert all(c.kind == LEAF for c in cands)
        assert len(cands) == 2  # both endpoints

    def test_diamond_triangles_contractible(self):
        state = ContractionState(diamond())
        cands = find_candidate_blocks(state)
        cycles = [c for c in cands if c.kind == CYCLE]
        # the two triangles are induced with 2 boundary nodes; the square
        # 0-1-2-3 has the 0-2 chord so is not induced
        assert len(cycles) == 2
        assert all(len(c.nodes) == 3 for c in cycles)

    def test_satellite_candidates_match_figure_2(self):
        state = ContractionState(satellite())
        cands = find_candidate_blocks(state)
        kinds = {}
        for c in cands:
            kinds.setdefault(c.kind, []).append(c)
        # leaf edge (f, h)
        assert any(c.nodes == ("f", "h") for c in kinds[LEAF])
        cycle_sets = [frozenset(c.nodes) for c in kinds[CYCLE]]
        # the 5-cycle and the triangle are contractible
        assert frozenset("abcde") in cycle_sets
        assert frozenset("ijk") in cycle_sets
        # the (i, f, g) cycle has three boundary nodes: not contractible
        assert frozenset("ifg") not in cycle_sets


class TestContraction:
    def test_leaf_contraction_annotates_boundary(self):
        state = ContractionState(path_query(3))
        cand = next(
            c for c in find_candidate_blocks(state) if c.nodes == (1, 0)
        )
        block = contract(state, cand)
        assert block.kind == LEAF
        assert state.num_nodes() == 2
        assert state.node_ann[1] is block

    def test_two_boundary_cycle_adds_annotated_edge(self):
        # 4-cycle with pendant edges on opposite corners
        q = QueryGraph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 8), (2, 9)])
        state = ContractionState(q)
        cand = next(c for c in find_candidate_blocks(state) if c.kind == CYCLE)
        assert tuple(sorted(cand.boundary)) == (0, 2)
        block = contract(state, cand)
        assert frozenset((0, 2)) in state.edge_ann
        assert state.edge_ann[frozenset((0, 2))] is block
        assert 1 not in state.adj and 3 not in state.adj

    def test_annotation_inheritance(self):
        # star: successive leaves absorb prior annotations (chain)
        state = ContractionState(star_query(2))
        first = next(c for c in find_candidate_blocks(state) if c.nodes == (0, 1))
        b1 = contract(state, first)
        second = next(c for c in find_candidate_blocks(state) if c.nodes == (0, 2))
        b2 = contract(state, second)
        assert b2.node_ann[0] is b1  # b1 became the child of b2


class TestBuildDecomposition:
    def test_pure_cycle_root(self):
        plan = build_decomposition(cycle_query(6))
        assert plan.root.kind == CYCLE
        assert plan.root.boundary == ()

    def test_tree_query_all_leaf_blocks(self):
        plan = build_decomposition(path_query(5))
        kinds = {b.kind for b in plan.blocks()}
        assert kinds == {LEAF, SINGLETON}

    def test_single_node_query(self):
        plan = build_decomposition(QueryGraph([], nodes=["a"]))
        assert plan.root.kind == SINGLETON
        assert not plan.root.node_ann

    def test_single_edge_query(self):
        plan = build_decomposition(QueryGraph([("a", "b")]))
        assert plan.root.kind == SINGLETON
        assert len(plan.root.node_ann) == 1

    def test_rejects_treewidth_3(self):
        k4 = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        with pytest.raises(DecompositionError, match="treewidth"):
            build_decomposition(k4)

    def test_rejects_disconnected(self):
        with pytest.raises(DecompositionError, match="connected"):
            build_decomposition(QueryGraph([(0, 1), (2, 3)]))

    def test_every_query_node_in_exactly_one_block(self):
        for name, q in paper_queries().items():
            plan = build_decomposition(q)
            covered = plan.root.subquery_nodes()
            assert covered == set(q.nodes()), name

    def test_satellite_structure(self):
        plan = build_decomposition(satellite())
        cycles = sorted(b.length for b in plan.cycle_blocks())
        # Figure 2: 5-cycle, triangle, 4-cycle (a,f,g,c), root cycle (i,f,g)
        assert cycles == [3, 3, 4, 5]

    def test_blocks_bottom_up_order(self):
        plan = build_decomposition(satellite())
        blocks = plan.blocks()
        seen = set()
        for b in blocks:
            for child in b.children():
                assert id(child) in seen
            seen.add(id(b))


class TestPlanMetrics:
    def test_longest_cycle(self):
        plan = build_decomposition(cycle_query(7))
        assert plan.longest_cycle() == 7

    def test_tree_plan_has_no_cycles(self):
        plan = build_decomposition(star_query(4))
        assert plan.longest_cycle() == 0

    def test_heuristic_key_ordering(self):
        plans = enumerate_plans(paper_queries()["brain1"])
        keys = [p.heuristic_key() for p in plans]
        assert len(set(keys)) >= 1
        assert all(k[0] == 6 for k in keys)  # both plans keep the 6-cycle intact
