"""Tests for projection tables."""

from repro.tables import BinaryTable, PathTable, UnaryTable, table_total


class TestUnaryTable:
    def test_add_accumulates(self):
        t = UnaryTable("a")
        t.add(3, 0b11, 2)
        t.add(3, 0b11, 5)
        assert t.data[(3, 0b11)] == 7

    def test_by_vertex_index(self):
        t = UnaryTable("a")
        t.add(1, 0b01, 1)
        t.add(1, 0b10, 2)
        t.add(2, 0b01, 3)
        idx = t.by_vertex()
        assert sorted(idx[1]) == [(0b01, 1), (0b10, 2)]
        assert idx[2] == [(0b01, 3)]

    def test_total(self):
        t = UnaryTable("x")
        t.add(0, 1, 4)
        t.add(1, 1, 6)
        assert t.total() == 10
        assert len(t) == 2


class TestBinaryTable:
    def test_transpose(self):
        t = BinaryTable(("a", "b"))
        t.add(1, 2, 0b11, 5)
        tt = t.transpose()
        assert tt.boundary == ("b", "a")
        assert tt.data[(2, 1, 0b11)] == 5

    def test_transpose_involution(self):
        t = BinaryTable(("a", "b"))
        t.add(1, 2, 3, 4)
        t.add(2, 7, 5, 1)
        assert t.transpose().transpose().data == t.data

    def test_by_first(self):
        t = BinaryTable(("a", "b"))
        t.add(1, 2, 0b11, 5)
        t.add(1, 3, 0b101, 2)
        idx = t.by_first()
        assert sorted(idx[1]) == [(2, 0b11, 5), (3, 0b101, 2)]


class TestPathTable:
    def test_extras_in_key(self):
        t = PathTable(("p",))
        t.add(1, 2, (9,), 0b11, 1)
        t.add(1, 2, (8,), 0b11, 1)
        assert len(t) == 2

    def test_by_endpoints(self):
        t = PathTable()
        t.add(1, 2, (), 3, 4)
        t.add(1, 2, (), 5, 6)
        t.add(2, 3, (), 3, 1)
        idx = t.by_endpoints()
        assert len(idx[(1, 2)]) == 2
        assert idx[(2, 3)] == [((), 3, 1)]

    def test_table_total_none(self):
        assert table_total(None) == 0
        t = PathTable()
        t.add(0, 1, (), 1, 7)
        assert table_total(t) == 7
