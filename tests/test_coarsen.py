"""Tests for LoadStats.coarsen — the one-run scaling-curve methodology."""

import numpy as np
import pytest

from repro.counting.estimator import random_coloring
from repro.distributed import LoadStats, run_distributed
from repro.graph import erdos_renyi
from repro.query import cycle_query


class TestCoarsenMechanics:
    def test_ops_summed_in_groups(self):
        stats = LoadStats(4)
        s = stats.new_stage("x")
        s.ops[:] = [1, 2, 3, 4]
        coarse = stats.coarsen(2)
        assert coarse.nranks == 2
        assert list(coarse.stages[0].ops) == [3, 7]

    def test_serial_time_preserved(self):
        stats = LoadStats(8)
        s = stats.new_stage("x")
        s.ops[:] = np.arange(8)
        assert stats.coarsen(4).serial_time() == stats.serial_time()

    def test_invalid_factor(self):
        stats = LoadStats(6)
        with pytest.raises(ValueError):
            stats.coarsen(4)

    def test_identity_factor(self):
        stats = LoadStats(4)
        s = stats.new_stage("x")
        s.ops[:] = [5, 1, 2, 2]
        coarse = stats.coarsen(1)
        assert list(coarse.stages[0].ops) == [5, 1, 2, 2]

    def test_makespan_monotone_under_coarsening(self):
        stats = LoadStats(8)
        s = stats.new_stage("x")
        s.ops[:] = np.arange(8)
        # fewer ranks cannot be faster
        assert stats.coarsen(2).makespan(0.0) >= stats.makespan(0.0)


class TestCoarsenMatchesDirectRuns:
    def test_block_partition_refinement(self, rng):
        """Coarsening an 8-rank block-partition run approximates the
        2-rank run: with n divisible by 8 the refinement is exact for
        operations (messages are kept conservatively)."""
        g = erdos_renyi(80, 0.12, rng, name="er80")  # n = 80, divisible by 8
        q = cycle_query(4)
        colors = random_coloring(g.n, q.k, rng)
        fine = run_distributed(g, q, colors, 8, method="db")
        direct = run_distributed(g, q, colors, 2, method="db")
        coarse = fine.stats.coarsen(4)
        assert coarse.makespan(0.0) == pytest.approx(
            direct.stats.makespan(0.0), rel=1e-9
        )
        assert coarse.serial_time() == pytest.approx(direct.stats.serial_time())
