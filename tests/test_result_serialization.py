"""RunResult/LoadStats/WallStats serialization and request fingerprints."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    CountingEngine,
    CountRequest,
    EngineConfig,
    RunResult,
    canonical_query,
    canonical_request,
    plan_summary,
    request_fingerprint,
)
from repro.distributed.runtime import LoadStats, WallStats
from repro.graph.generators import erdos_renyi
from repro.query.library import paper_query
from repro.query.query import QueryGraph


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.15, np.random.default_rng(9), name="er40")


class TestRunResultSerialization:
    def test_round_trip_preserves_payload(self, graph):
        with CountingEngine(graph) as engine:
            result = engine.count(paper_query("glet1"), trials=3, seed=1)
        doc = result.to_dict()
        json.dumps(doc)  # JSON-safe by construction
        back = RunResult.from_dict(doc)
        assert back.colorful_counts == result.colorful_counts
        assert back.estimate == result.estimate
        assert back.relative_std == result.relative_std
        assert back.method == result.method
        assert back.seed == result.seed
        assert back.trial_times == result.trial_times

    def test_round_trip_is_stable(self, graph):
        with CountingEngine(graph) as engine:
            result = engine.count(paper_query("glet2"), trials=2, seed=5)
        doc = result.to_dict()
        assert RunResult.from_dict(doc).to_dict() == doc

    def test_plan_flattens_to_digest(self, graph):
        with CountingEngine(graph) as engine:
            q = paper_query("glet1")
            result = engine.count(q, trials=1, seed=0)
            doc = result.to_dict()
            assert doc["plan"] == plan_summary(engine.plan_for(q))
        back = RunResult.from_dict(doc)
        assert back.plan is None
        assert back.plan_digest == doc["plan"]

    def test_load_stats_survive_the_wire(self, graph):
        with CountingEngine(graph) as engine:
            result = engine.count(paper_query("glet1"), trials=2, seed=0,
                                  method="db", nranks=4)
        assert result.load is not None
        back = RunResult.from_dict(result.to_dict())
        assert back.load is not None
        assert back.load.nranks == result.load.nranks
        assert back.makespan == pytest.approx(result.makespan)
        assert back.speedup == pytest.approx(result.speedup)


class TestStatsDicts:
    def test_load_stats_round_trip(self):
        stats = LoadStats(3)
        rec = stats.new_stage("join")
        rec.ops += np.array([1.0, 2.0, 3.0])
        rec.msgs += np.array([0.0, 1.0, 0.5])
        back = LoadStats.from_dict(stats.to_dict())
        assert back.nranks == 3
        assert back.makespan(0.5) == stats.makespan(0.5)
        assert back.imbalance() == stats.imbalance()
        json.dumps(stats.to_dict())

    def test_wall_stats_round_trip(self):
        stats = WallStats(2)
        stats.wall_seconds = 1.25
        rec = stats.new_stage("b0:cycle")
        rec.cpu += np.array([0.5, 0.75])
        rec.wall += np.array([0.6, 0.9])
        rec.rows += np.array([10, 20])
        back = WallStats.from_dict(stats.to_dict())
        assert back.wall_seconds == 1.25
        assert back.critical_seconds() == stats.critical_seconds()
        assert back.exchanged_rows() == 30
        json.dumps(stats.to_dict())


class TestFingerprints:
    def test_stable_and_sensitive(self):
        q = paper_query("glet1")
        a = request_fingerprint("condmat", CountRequest(query=q, trials=3, seed=1))
        b = request_fingerprint("condmat", CountRequest(query=q, trials=3, seed=1))
        assert a == b
        assert a != request_fingerprint("condmat", CountRequest(query=q, trials=3, seed=2))
        assert a != request_fingerprint("enron", CountRequest(query=q, trials=3, seed=1))
        assert a != request_fingerprint(
            "condmat", CountRequest(query=paper_query("glet2"), trials=3, seed=1)
        )

    def test_inherited_defaults_match_explicit(self):
        q = paper_query("wiki")
        cfg = EngineConfig(trials=7, seed=3)
        implicit = request_fingerprint("condmat", CountRequest(query=q), cfg)
        explicit = request_fingerprint(
            "condmat", CountRequest(query=q, trials=7, seed=3), cfg
        )
        assert implicit == explicit

    def test_query_name_is_part_of_the_key(self):
        # the cached RunResult carries query_name, so requests differing
        # only in name must not share a cache entry (mislabeled payloads)
        edges = [(0, 1), (1, 2), (2, 0)]
        a = QueryGraph(edges, name="tri-a")
        b = QueryGraph(edges, name="tri-b")
        fa = request_fingerprint("g", CountRequest(query=a, trials=1))
        fb = request_fingerprint("g", CountRequest(query=b, trials=1))
        assert fa != fb
        assert canonical_query(a)["name"] == "tri-a"
        # label-spelling of the *nodes* is not structure: relabeling to
        # ints canonicalises identically
        c = QueryGraph([("x", "y"), ("y", "z"), ("z", "x")], name="tri-a")
        fc = request_fingerprint("g", CountRequest(query=c, trials=1))
        assert fc == fa

    def test_canonical_request_is_json_and_resolved(self):
        q = paper_query("glet1")
        doc = canonical_request("condmat", CountRequest(query=q), EngineConfig(seed=11))
        json.dumps(doc)
        assert doc["seed"] == 11
        assert doc["dataset"] == "condmat"
        assert doc["query"]["k"] == q.k
