"""Tests for the self-verification harness."""


from repro.bench import dataset
from repro.counting import VerificationReport, verify_counting
from repro.graph import erdos_renyi
from repro.query import cycle_query, paper_query


class TestVerificationReport:
    def test_ok_when_no_failures(self):
        r = VerificationReport("g", "q")
        r.record("check1", True)
        assert r.ok
        assert "OK" in r.summary()

    def test_failures_recorded(self):
        r = VerificationReport("g", "q")
        r.record("check1", False, "boom")
        assert not r.ok
        assert "boom" in r.summary()


class TestVerifyCounting:
    def test_random_graph_passes(self, rng):
        g = erdos_renyi(40, 0.15, rng, name="er40")
        report = verify_counting(g, cycle_query(4), seed=1)
        assert report.ok, report.summary()

    def test_dataset_passes(self):
        report = verify_counting(dataset("condmat"), paper_query("glet2"), seed=2)
        assert report.ok, report.summary()

    def test_paper_query_with_leaves(self, rng):
        g = erdos_renyi(30, 0.2, rng, name="er30")
        report = verify_counting(g, paper_query("youtube"), seed=3)
        assert report.ok, report.summary()

    def test_check_names_cover_battery(self, rng):
        g = erdos_renyi(25, 0.2, rng)
        report = verify_counting(g, cycle_query(3), seed=4, rank_counts=(2,))
        names = set(report.checks)
        assert "method-agreement" in names
        assert "plan-agreement" in names
        assert "subsample-ground-truth" in names
        assert any(n.startswith("rank-invariance") for n in names)
