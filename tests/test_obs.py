"""The observability layer: metrics exactness, tracing, exposition, CLI.

Covers the acceptance-critical properties of :mod:`repro.obs`:
histogram bucket counts stay exact under a multi-thread hammer, the
kill-switch leaves counting results bit-identical with zero registry
growth, ps-dist worker spans land in the master's trace under one trace
ID across the fork boundary, and ``repro-count count --trace`` writes
one valid Chrome trace-event document end to end.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.engine import CountingEngine
from repro.graph.generators import erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.obs.view import main as view_main
from repro.query import paper_query


# ----------------------------------------------------------------------
# metrics: counters, gauges, histograms
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_basics_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "total requests", labels=("method",))
        c.inc(method="GET")
        c.inc(2.0, method="GET")
        c.inc(method="POST")
        assert c.value(method="GET") == 3.0
        assert c.value(method="POST") == 1.0
        assert c.samples() == [(("GET",), 3.0), (("POST",), 1.0)]

    def test_counter_rejects_negative_and_bad_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", labels=("x",))
        with pytest.raises(obs.MetricError):
            c.inc(-1.0, x="a")
        with pytest.raises(obs.MetricError):
            c.inc()  # missing label
        with pytest.raises(obs.MetricError):
            c.inc(x="a", y="b")  # extra label

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0

    def test_histogram_bucket_edges_are_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 99.0):
            h.observe(v)
        cumulative, total, count = h.sample()
        # le="1.0" holds 0.5 and 1.0; le="2.0" adds 1.5 and 2.0; ...
        assert cumulative == [2, 4, 6, 7]
        assert count == 7
        assert total == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 2.5 + 3.0 + 99.0)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(obs.MetricError):
            reg.histogram("empty_seconds", buckets=())
        with pytest.raises(obs.MetricError):
            reg.histogram("dup_seconds", buckets=(1.0, 1.0))

    def test_registry_get_or_create_and_clashes(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("k",))
        assert reg.counter("x_total", labels=("k",)) is a
        with pytest.raises(obs.MetricError):
            reg.gauge("x_total")  # type clash
        with pytest.raises(obs.MetricError):
            reg.counter("x_total", labels=("other",))  # label-set clash
        assert reg.names() == ["x_total"] and len(reg) == 1

    def test_bucket_counts_exact_under_thread_hammer(self):
        """8 threads, interleaved observations: every count lands exactly."""
        reg = MetricsRegistry()
        h = reg.histogram("hammer_seconds", labels=("who",), buckets=(1.0, 2.0))
        c = reg.counter("hammer_total")
        per_thread, nthreads = 2_000, 8
        barrier = threading.Barrier(nthreads)

        def work(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                h.observe(float(i % 3), who=str(tid % 2))
                c.inc()

        threads = [threading.Thread(target=work, args=(t,)) for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert c.value() == per_thread * nthreads
        # per i%3 cycle: 0 and 1 land in le=1.0 (inclusive), 2 in le=2.0;
        # 4 threads share each `who` label value
        per_label = per_thread * (nthreads // 2)
        per_cycle = per_thread // 3 + (1 if per_thread % 3 else 0)
        for who in ("0", "1"):
            cumulative, total, count = h.sample(who=who)
            assert count == per_label
            expect_le1 = sum(1 for i in range(per_thread) if i % 3 <= 1) * 4
            assert cumulative[0] == expect_le1
            assert cumulative[-1] == per_label
            assert total == pytest.approx(sum(i % 3 for i in range(per_thread)) * 4)
        assert per_cycle  # silence unused-var lint on the helper arithmetic


# ----------------------------------------------------------------------
# exposition: render + strict parse round trip
# ----------------------------------------------------------------------

class TestExposition:
    def test_render_parse_round_trip_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("rt_requests_total", "reqs", labels=("method",))
        c.inc(3, method="GET")
        c.inc(method='PO"ST\\')  # exercises label escaping
        g = reg.gauge("rt_depth", "queue depth")
        g.set(2)
        h = reg.histogram("rt_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)

        text = obs.render_prometheus(reg)
        assert "# TYPE rt_requests_total counter" in text
        assert "# TYPE rt_seconds histogram" in text
        parsed = obs.parse_prometheus_text(text)
        assert parsed["rt_requests_total"][(("method", "GET"),)] == 3.0
        assert parsed["rt_requests_total"][(("method", 'PO"ST\\'),)] == 1.0
        assert parsed["rt_depth"][()] == 2.0
        buckets = parsed["rt_seconds_bucket"]
        assert buckets[(("le", "0.1"),)] == 1.0
        assert buckets[(("le", "1"),)] == 2.0  # integral edges render bare
        assert buckets[(("le", "+Inf"),)] == 3.0
        assert parsed["rt_seconds_count"][()] == 3.0
        assert parsed["rt_seconds_sum"][()] == pytest.approx(5.55)

    def test_parser_rejects_garbage_and_duplicates(self):
        with pytest.raises(ValueError):
            obs.parse_prometheus_text("this is not exposition\n")
        with pytest.raises(ValueError):
            obs.parse_prometheus_text("x_total 1\nx_total 2\n")

    def test_default_registry_serves_exposition(self):
        obs.registry().counter(
            "repro_test_default_total", "test counter"
        ).inc()
        text = obs.render_prometheus()
        assert "repro_test_default_total" in text


# ----------------------------------------------------------------------
# kill-switch semantics
# ----------------------------------------------------------------------

class TestDisable:
    def test_disabled_observations_noop_and_registry_stays_frozen(self):
        reg = MetricsRegistry()
        c = reg.counter("frozen_total")
        c.inc()
        obs.disable()
        try:
            assert not obs.is_enabled()
            c.inc(100)
            # a *new* name hands back an unregistered shell: zero growth
            shell = reg.counter("never_registered_total")
            shell.inc(7)
            assert len(reg) == 1 and reg.names() == ["frozen_total"]
            assert reg.get("never_registered_total") is None
        finally:
            obs.enable()
        assert c.value() == 1.0

    def test_disabled_span_is_shared_noop_even_while_collecting(self):
        obs.disable()
        try:
            trace = obs.start_trace()
            try:
                with obs.span("never.recorded"):
                    pass
            finally:
                obs.finish_trace()
            assert len(trace) == 0
        finally:
            obs.enable()

    def test_disable_leaves_counts_bit_identical_zero_registry_growth(self):
        """The differential guarantee: obs off changes nothing but timing."""
        g = erdos_renyi(50, 0.12, np.random.default_rng(11), name="er50")
        q = paper_query("glet1")
        with CountingEngine(g) as engine:
            baseline = engine.count(q, trials=3, seed=5, method="ps-vec")
        snap_before = obs.registry().snapshot()
        names_before = obs.registry().names()
        obs.disable()
        try:
            with CountingEngine(g) as engine:
                off = engine.count(q, trials=3, seed=5, method="ps-vec")
        finally:
            obs.enable()
        assert off.colorful_counts == baseline.colorful_counts
        assert off.estimate == baseline.estimate
        assert obs.registry().names() == names_before
        assert obs.registry().snapshot() == snap_before


# ----------------------------------------------------------------------
# tracing: spans, collect, fork boundary, chrome export
# ----------------------------------------------------------------------

class TestTracing:
    def test_span_records_nesting_and_attributes(self):
        with obs.collect() as trace:
            with obs.span("outer", phase="a") as sp:
                with obs.span("inner"):
                    pass
                sp.add(found=3)
        events = trace.events()
        # inner exits (and records) before outer
        assert [e["name"] for e in events] == ["inner", "outer"]
        outer = events[1]
        assert outer["args"] == {"phase": "a", "found": 3}
        assert outer["trace_id"] == trace.trace_id
        assert outer["dur"] >= events[0]["dur"]

    def test_span_is_noop_without_a_collector(self):
        assert obs.active_trace() is None
        assert isinstance(obs.span("idle"), obs.NoopSpan)

    def test_nested_collect_is_rejected(self):
        with obs.collect():
            with pytest.raises(RuntimeError):
                obs.start_trace()

    def test_collect_binds_and_restores_trace_id(self):
        assert obs.current_trace_id() is None
        with obs.collect(trace_id="cafe0123cafe0123") as trace:
            assert obs.current_trace_id() == "cafe0123cafe0123"
            assert trace.trace_id == "cafe0123cafe0123"
        assert obs.current_trace_id() is None

    def test_engine_run_collects_spans_and_stamps_result(self):
        g = erdos_renyi(50, 0.12, np.random.default_rng(3), name="er50")
        q = paper_query("glet1")
        with obs.collect() as trace:
            with CountingEngine(g) as engine:
                result = engine.count(q, trials=2, seed=0, method="ps-vec")
        names = {e["name"] for e in trace.events()}
        assert "engine.count" in names and "engine.trial" in names
        assert any(n.startswith("sweep.") for n in names)
        assert result.trace_id == trace.trace_id
        assert all(e["trace_id"] == trace.trace_id for e in trace.events())

    def test_result_trace_id_survives_the_wire(self):
        g = erdos_renyi(40, 0.15, np.random.default_rng(9), name="er40")
        q = paper_query("glet1")
        with obs.collect():
            with CountingEngine(g) as engine:
                result = engine.count(q, trials=2, seed=1)
        from repro.engine.result import RunResult

        doc = result.to_dict()
        assert doc["trace_id"] == result.trace_id
        assert RunResult.from_dict(doc).trace_id == result.trace_id

    def test_ps_dist_worker_spans_join_the_master_trace(self):
        """Fork boundary: shard-worker spans carry the parent trace ID."""
        import os

        g = erdos_renyi(60, 0.12, np.random.default_rng(21), name="er60")
        q = paper_query("glet1")
        with obs.collect() as trace:
            with CountingEngine(g) as engine:
                result = engine.count(
                    q, trials=2, seed=0, method="ps-dist", workers=2
                )
        events = trace.events()
        names = {e["name"] for e in events}
        assert {"engine.count", "dist.superstep", "dist.solve"} <= names
        pids = {e["pid"] for e in events}
        assert os.getpid() in pids and len(pids) >= 3  # master + 2 workers
        assert {e["trace_id"] for e in events} == {trace.trace_id}
        assert result.trace_id == trace.trace_id
        # superstep spans fold the measured WallStats row in
        superstep = next(e for e in events if e["name"] == "dist.superstep")
        assert {"stage", "workers", "rows", "max_wall", "max_cpu"} <= set(
            superstep["args"]
        )

    def test_chrome_document_schema(self, tmp_path):
        with obs.collect() as trace:
            with obs.span("unit", detail=np.int64(3)):  # numpy coerced
                pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, trace)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["trace_id"] == trace.trace_id
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] > 0 and event["dur"] >= 0  # microseconds
        assert event["args"]["trace_id"] == trace.trace_id
        assert event["args"]["detail"] == "3"  # JSON-safe coercion
        json.dumps(doc)  # the whole document must be serialisable


# ----------------------------------------------------------------------
# CLI: repro-count count --trace and the viewer
# ----------------------------------------------------------------------

class TestCli:
    def test_count_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "run.json"
        rc = cli_main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--method", "ps-vec", "--trials", "2", "--trace", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine.count" in names
        ids = {e["args"]["trace_id"] for e in doc["traceEvents"]}
        assert len(ids) == 1
        assert "trace          :" in capsys.readouterr().out

    def test_view_renders_chrome_trace(self, tmp_path, capsys):
        with obs.collect() as trace:
            with obs.span("viewer.span"):
                pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, trace)
        assert view_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "viewer.span" in out and trace.trace_id in out

    def test_view_renders_load_stats_dump(self, tmp_path, capsys):
        from repro.distributed.runtime import LoadStats

        stats = LoadStats(2)
        rec = stats.new_stage("join-e1")
        rec.ops += np.array([30.0, 10.0])
        rec.msgs += np.array([4.0, 0.0])
        path = tmp_path / "loadstats.json"
        path.write_text(json.dumps(stats.to_dict()))
        assert view_main(["--load-stats", str(path)]) == 0
        assert "join-e1" in capsys.readouterr().out
