"""Tests for the decomposition-plan validator."""

import pytest

from repro.decomposition import (
    PlanValidationError,
    build_decomposition,
    enumerate_plans,
    validate_plan,
)
from repro.decomposition.blocks import CYCLE
from repro.decomposition.tree import Plan
from repro.query import (
    all_fixture_queries,
    cycle_query,
    paper_queries,
    random_tw2_query,
    satellite,
)


class TestValidPlans:
    def test_all_fixture_plans_valid(self):
        for q in all_fixture_queries():
            for plan in enumerate_plans(q)[:6]:
                validate_plan(plan)

    def test_satellite_all_plans_valid(self):
        for plan in enumerate_plans(satellite()):
            validate_plan(plan)

    def test_random_queries_valid(self, rng):
        for _ in range(30):
            q = random_tw2_query(rng, max_k=9)
            validate_plan(build_decomposition(q))


class TestInvalidPlansRejected:
    def test_corrupt_boundary_detected(self):
        q = paper_queries()["wiki"]
        plan = build_decomposition(q)
        # find a cycle block and break its boundary
        for b in plan.blocks():
            if b.kind == CYCLE and b.boundary:
                b.boundary = tuple(
                    n for n in b.nodes if n not in b.boundary
                )[: len(b.boundary)]
                break
        with pytest.raises(PlanValidationError):
            validate_plan(plan)

    def test_missing_edge_detected(self):
        q = cycle_query(5)
        plan = build_decomposition(q)
        # drop a node from the root cycle: edge coverage breaks
        plan.root.nodes = plan.root.nodes[:-1]
        with pytest.raises(PlanValidationError):
            validate_plan(plan)

    def test_tiny_cycle_detected(self):
        q = cycle_query(3)
        plan = build_decomposition(q)
        plan.root.nodes = plan.root.nodes[:2]
        with pytest.raises(PlanValidationError):
            validate_plan(plan)

    def test_wrong_query_detected(self):
        plan = build_decomposition(cycle_query(4))
        impostor = Plan(cycle_query(5), plan.root)
        with pytest.raises(PlanValidationError):
            validate_plan(impostor)
