"""Tests for the Monte-Carlo E[X]/E[Y] estimation."""

import pytest

from repro.theory import PathStatEstimate, estimate_xy, xy_growth_curve


class TestPathStatEstimate:
    def test_mean_and_std(self):
        est = PathStatEstimate("X", 100, [10, 20, 30])
        assert est.mean == 20.0
        assert est.std == pytest.approx(10.0)
        assert est.ci95_half_width > 0

    def test_single_sample_no_spread(self):
        est = PathStatEstimate("Y", 100, [7])
        assert est.std == 0.0
        assert est.ci95_half_width == 0.0


class TestEstimateXY:
    def test_x_below_y_in_expectation(self):
        x_est, y_est = estimate_xy(n=256, alpha=1.5, q=3, samples=3, seed=5)
        assert len(x_est.samples) == 3
        assert x_est.mean <= y_est.mean

    def test_deterministic(self):
        a = estimate_xy(128, 1.5, 3, samples=2, seed=1)
        b = estimate_xy(128, 1.5, 3, samples=2, seed=1)
        assert a[0].samples == b[0].samples
        assert a[1].samples == b[1].samples


class TestGrowthCurve:
    def test_rows_and_gap(self):
        rows = xy_growth_curve([128, 256], alpha=1.5, q=3, samples=2, seed=3)
        assert [r["n"] for r in rows] == [128, 256]
        for r in rows:
            assert r["E[X]"] <= r["E[Y]"]
            assert r["Y/X"] >= 1.0
