"""Tests for subgraph sampling."""

import pytest

from repro.graph import (
    Graph,
    bfs_ball,
    erdos_renyi,
    induced_subgraph,
    random_induced_sample,
)
from repro.graph.properties import is_connected


class TestInducedSubgraph:
    def test_whole_graph(self, petersen_graph):
        sub, remap = induced_subgraph(petersen_graph, range(10))
        assert sub.n == 10 and sub.m == 15
        assert remap == {i: i for i in range(10)}

    def test_triangle_extraction(self, petersen_graph):
        # outer 5-cycle vertices 0..4 induce a C5
        sub, _ = induced_subgraph(petersen_graph, [0, 1, 2, 3, 4])
        assert sub.n == 5 and sub.m == 5

    def test_relabelling(self):
        g = Graph(5, [(2, 4)])
        sub, remap = induced_subgraph(g, [2, 4])
        assert sub.n == 2 and sub.m == 1
        assert remap == {2: 0, 4: 1}

    def test_duplicates_collapsed(self, triangle_graph):
        sub, _ = induced_subgraph(triangle_graph, [0, 0, 1])
        assert sub.n == 2

    def test_out_of_range(self, triangle_graph):
        with pytest.raises(ValueError):
            induced_subgraph(triangle_graph, [0, 7])


class TestBfsBall:
    def test_cap_respected(self, petersen_graph):
        ball = bfs_ball(petersen_graph, 0, 4)
        assert len(ball) == 4
        assert ball[0] == 0

    def test_full_reach(self, petersen_graph):
        ball = bfs_ball(petersen_graph, 0, 100)
        assert sorted(ball) == list(range(10))

    def test_isolated_center(self):
        g = Graph(3, [(1, 2)])
        assert bfs_ball(g, 0, 5) == [0]

    def test_invalid_center(self, triangle_graph):
        with pytest.raises(ValueError):
            bfs_ball(triangle_graph, 9, 2)


class TestRandomInducedSample:
    def test_connected_sample(self, rng):
        g = erdos_renyi(60, 0.1, rng)
        sub, remap = random_induced_sample(g, 10, rng, connected=True)
        assert sub.n <= 10
        assert is_connected(sub) or sub.n == 1

    def test_uniform_sample_size(self, rng):
        g = erdos_renyi(50, 0.2, rng)
        sub, _ = random_induced_sample(g, 12, rng, connected=False)
        assert sub.n == 12

    def test_sample_edges_are_real(self, rng):
        g = erdos_renyi(30, 0.2, rng)
        sub, remap = random_induced_sample(g, 8, rng)
        inverse = {new: old for old, new in remap.items()}
        for u, v in sub.edges():
            assert g.has_edge(inverse[u], inverse[v])
