"""End-to-end integration tests across subsystem boundaries.

Each test exercises a full user journey (the paths the examples and
benches take), asserting cross-module consistency rather than unit
behaviour.
"""

import numpy as np
import pytest

from repro import paper_query
from repro.bench import dataset
from repro.counting import (
    count_colorful_matches,
    estimate_matches,
    verify_counting,
)
from repro.counting.estimator import random_coloring
from repro.decomposition import build_decomposition, choose_plan, validate_plan
from repro.distributed import compare_methods, run_distributed, strong_scaling
from repro.engine import CountingEngine
from repro.graph import (
    chung_lu_power_law,
    erdos_renyi,
    induced_subgraph,
    largest_component_subgraph,
    write_edge_list,
    read_edge_list,
)
from repro.motifs import motif_census
from repro.query import random_tw2_query, satellite


class TestFullPipeline:
    def test_generate_plan_count_estimate(self, rng):
        """Generator -> planner -> counter -> estimator, with ground truth."""
        g = largest_component_subgraph(
            chung_lu_power_law(120, 1.8, rng, name="pipeline")
        )
        q = paper_query("glet2")
        plan = choose_plan(q)
        validate_plan(plan)
        engine = CountingEngine(g)
        exact = engine.count_exact(q)
        result = engine.count(q, trials=25, seed=9, plan=plan)
        if exact > 100:
            assert result.estimate == pytest.approx(exact, rel=0.5)

    def test_io_roundtrip_preserves_counts(self, tmp_path, rng):
        g = erdos_renyi(30, 0.2, rng, name="io")
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        q = paper_query("glet1")
        colors = random_coloring(g.n, q.k, rng)
        first = CountingEngine(g).count_colorful(q, colors)
        assert first == CountingEngine(g2).count_colorful(q, colors)

    def test_subgraph_counts_bounded_by_parent(self, rng):
        """Induced subgraph can only lose matches."""
        g = erdos_renyi(25, 0.3, rng)
        q = paper_query("glet1")
        colors = random_coloring(g.n, q.k, rng)
        full = CountingEngine(g).count_colorful(q, colors)
        sub, remap = induced_subgraph(g, range(15))
        sub_colors = colors[sorted(remap)]
        assert CountingEngine(sub).count_colorful(q, sub_colors) <= full


class TestDatasetJourney:
    def test_dataset_to_distributed_run(self):
        g = dataset("condmat")
        q = paper_query("youtube")
        rng = np.random.default_rng(0)
        colors = random_coloring(g.n, q.k, rng)
        cmp = compare_methods(g, q, colors, nranks=8)
        assert cmp.ps.count == cmp.db.count
        curve = strong_scaling(g, q, colors, ranks=[2, 4, 8])
        assert len(curve.makespans) == 3

    def test_dataset_verification(self):
        report = verify_counting(dataset("brain"), paper_query("glet1"), seed=7)
        assert report.ok, report.summary()


class TestEstimatorConsistency:
    def test_sequential_vs_parallel_vs_context(self, rng):
        g = erdos_renyi(25, 0.25, rng, name="est")
        q = paper_query("glet1")
        seq = estimate_matches(g, q, trials=3, seed=2)
        par = CountingEngine(g).count(q, trials=3, seed=2, workers=2)
        ctx = CountingEngine(g).make_context(nranks=4)
        tracked = estimate_matches(g, q, trials=3, seed=2, ctx=ctx)
        assert seq.colorful_counts == par.colorful_counts == tracked.colorful_counts
        assert ctx.stats.total_ops() > 0  # the context really accounted


class TestSatelliteEndToEnd:
    def test_figure_2_worked_example(self, rng):
        """The paper's Figure 2 query through the whole stack."""
        q = satellite()
        plan = build_decomposition(q)
        validate_plan(plan)
        g = erdos_renyi(12, 0.5, rng)
        colors = random_coloring(g.n, q.k, rng)
        expected = count_colorful_matches(g, q, colors)
        engine = CountingEngine(g)
        assert engine.count_colorful(q, colors, method="ps", plan=plan) == expected
        assert engine.count_colorful(q, colors, method="db", plan=plan) == expected
        run = run_distributed(g, q, colors, 4, plan=plan)
        assert run.count == expected


class TestMotifWorkflow:
    def test_census_on_dataset_sample(self, rng):
        g = dataset("roadnetca")
        sub, _ = induced_subgraph(g, range(100))
        census = motif_census(sub, k=3, trials=3, seed=4)
        assert len(census) == 2
        # a road grid has many paths, few triangles
        paths = next(e for e in census if e.motif.num_edges() == 2)
        tris = next(e for e in census if e.motif.num_edges() == 3)
        assert paths.match_estimate >= tris.match_estimate


class TestRandomQueryFuzz:
    def test_thirty_random_pipelines(self, rng):
        """Random tw2 queries through plan->validate->count->distribute."""
        for _ in range(8):
            q = random_tw2_query(rng, max_k=7)
            plan = build_decomposition(q)
            validate_plan(plan)
            g = erdos_renyi(10, 0.4, rng)
            colors = random_coloring(g.n, q.k, rng)
            expected = count_colorful_matches(g, q, colors)
            run = run_distributed(g, q, colors, 3, plan=plan)
            assert run.count == expected
