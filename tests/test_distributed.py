"""Tests for the simulated distributed engine and scaling metrics."""

import pytest

from repro.counting import count_colorful_matches
from repro.counting.estimator import random_coloring
from repro.distributed import (
    ExecutionContext,
    LoadStats,
    compare_methods,
    improvement_factor,
    make_partition,
    run_distributed,
    strong_scaling,
)
from repro.graph.degree import zipf_degree_sequence
from repro.graph.generators import chung_lu
from repro.graph.properties import largest_component_subgraph
from repro.query import cycle_query, paper_query


@pytest.fixture
def skewed_graph(rng):
    seq = zipf_degree_sequence(300, 2.0, 5.0, max_degree=60, rng=rng)
    return largest_component_subgraph(chung_lu(seq, rng, name="skewed"))


class TestLoadStats:
    def test_stage_reuse_by_name(self):
        stats = LoadStats(2)
        a = stats.new_stage("s1")
        b = stats.new_stage("s1")
        assert a is b
        assert len(stats.stages) == 1

    def test_makespan_is_sum_of_stage_maxima(self):
        stats = LoadStats(2)
        s1 = stats.new_stage("a")
        s1.ops[:] = [10, 2]
        s2 = stats.new_stage("b")
        s2.ops[:] = [1, 5]
        assert stats.makespan(kappa=0.0) == 15.0

    def test_serial_time_counts_everything(self):
        stats = LoadStats(4)
        s = stats.new_stage("x")
        s.ops[:] = [1, 2, 3, 4]
        assert stats.serial_time() == 10.0

    def test_imbalance(self):
        stats = LoadStats(2)
        s = stats.new_stage("x")
        s.ops[:] = [30, 10]
        assert stats.imbalance() == pytest.approx(30 / 20)


class TestExecutionContext:
    def test_op_attribution(self):
        ctx = ExecutionContext(make_partition(10, 2))
        ctx.begin_stage("s")
        ctx.op(0, 5)   # owner rank 0
        ctx.op(9, 3)   # owner rank 1
        assert ctx.stats.per_rank_ops()[0] == 5
        assert ctx.stats.per_rank_ops()[1] == 3

    def test_emit_counts_only_cross_owner(self):
        ctx = ExecutionContext(make_partition(10, 2))
        ctx.begin_stage("s")
        ctx.emit(0, 1)  # same owner: no message
        ctx.emit(0, 9)  # cross: message
        assert ctx.stats.total_msgs() == 1

    def test_untracked_context_is_silent(self):
        ctx = ExecutionContext(make_partition(10, 2), track=False)
        ctx.begin_stage("s")
        ctx.op(0, 100)
        assert ctx.stats.total_ops() == 0


class TestDistributedRuns:
    def test_count_independent_of_ranks(self, rng, skewed_graph):
        q = paper_query("glet1")
        colors = random_coloring(skewed_graph.n, q.k, rng)
        expected = count_colorful_matches(skewed_graph, q, colors)
        for nranks in (1, 2, 4, 8):
            run = run_distributed(skewed_graph, q, colors, nranks)
            assert run.count == expected

    def test_count_independent_of_strategy(self, rng, skewed_graph):
        q = cycle_query(4)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        counts = {
            run_distributed(skewed_graph, q, colors, 4, strategy=s).count
            for s in ("block", "cyclic", "hash")
        }
        assert len(counts) == 1

    def test_ps_db_comparison_consistent(self, rng, skewed_graph):
        q = cycle_query(4)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        cmp = compare_methods(skewed_graph, q, colors, nranks=4)
        assert cmp.ps.count == cmp.db.count
        assert cmp.improvement_factor > 0

    def test_db_reduces_max_load_on_skewed_graph(self, rng, skewed_graph):
        """The paper's Figure 11 claim: DB lowers the maximum rank load."""
        q = cycle_query(5)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        cmp = compare_methods(skewed_graph, q, colors, nranks=8)
        assert cmp.db.serial_time < cmp.ps.serial_time  # less total work
        assert cmp.load_reduction > 1.0                 # better max load

    def test_improvement_factor_helper(self, rng, skewed_graph):
        q = cycle_query(4)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        if_val = improvement_factor(skewed_graph, q, colors, nranks=4)
        assert if_val > 0


class TestScalingCurves:
    def test_strong_scaling_monotone_speedup(self, rng, skewed_graph):
        q = cycle_query(4)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        curve = strong_scaling(skewed_graph, q, colors, ranks=[1, 2, 4, 8])
        speedups = curve.speedups()
        assert speedups[0] == pytest.approx(1.0)
        # modeled makespan never increases when adding ranks
        assert all(b >= a * 0.95 for a, b in zip(speedups, speedups[1:]))

    def test_speedup_bounded_by_ranks(self, rng, skewed_graph):
        q = cycle_query(4)
        colors = random_coloring(skewed_graph.n, q.k, rng)
        run = run_distributed(skewed_graph, q, colors, 4, kappa=0.0)
        assert run.speedup <= 4.0 + 1e-9
