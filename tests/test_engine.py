"""Tests for the unified counting engine (repro.engine)."""

import warnings

import numpy as np
import pytest

import repro.decomposition.planner as planner_mod
from repro.counting import count_colorful_matches, count_matches
from repro.counting.estimator import estimate_matches, EstimateResult
from repro.engine import (
    AUTO,
    BackendRegistry,
    CountingEngine,
    CountRequest,
    EngineConfig,
    RunResult,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.backends import DEFAULT_REGISTRY, SolverBackend
from repro.graph import erdos_renyi
from repro.query import cycle_query, paper_queries, paper_query, path_query, star_query


@pytest.fixture
def graph(rng):
    return erdos_renyi(20, 0.3, rng, name="er20")


@pytest.fixture
def planner_calls(monkeypatch):
    """Counter of actual planner invocations (heuristic_plan calls)."""
    calls = []
    original = planner_mod.heuristic_plan

    def counting_heuristic_plan(query, limit=20000):
        calls.append(query.name)
        return original(query, limit=limit)

    # the engine resolves the planner through its own module reference
    import repro.engine.engine as engine_mod

    monkeypatch.setattr(engine_mod, "heuristic_plan", counting_heuristic_plan)
    return calls


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for expected in ("ps", "db", "ps-even", "treelet", "bruteforce"):
            assert expected in names

    def test_unknown_method_raises(self, graph):
        colors = np.zeros(graph.n, dtype=np.int64)
        with pytest.raises(ValueError, match="unknown method"):
            CountingEngine(graph).count_colorful(cycle_query(3), colors, method="qq")

    def test_register_decorator(self, graph):
        reg = BackendRegistry()

        @reg.backend("doubler")
        def doubler(g, query, colors, *, plan, ctx, num_colors):
            """Twice the brute-force count (marker backend for the test)."""
            return 2 * count_colorful_matches(g, query, colors)

        engine = CountingEngine(graph, registry=reg)
        q = cycle_query(3)
        colors = np.array([i % 3 for i in range(graph.n)])
        assert engine.count_colorful(q, colors, method="doubler") == 2 * count_colorful_matches(
            graph, q, colors
        )

    def test_duplicate_registration_rejected(self):
        reg = BackendRegistry()
        reg.register(SolverBackend("db"))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(SolverBackend("db"))

    def test_global_register_backend_roundtrip(self):
        @register_backend("test-temp-backend")
        def temp(g, query, colors, *, plan, ctx, num_colors):
            """Marker backend."""
            return 0

        try:
            assert get_backend("test-temp-backend") is temp
        finally:
            DEFAULT_REGISTRY._backends.pop("test-temp-backend")

    def test_auto_picks_treelet_for_trees(self, graph):
        engine = CountingEngine(graph)
        tree = star_query(3, name="star3")
        cyc = paper_query("glet1")
        assert engine.count(tree, trials=1, seed=0, method=AUTO).method == "treelet"
        assert engine.count(cyc, trials=1, seed=0, method=AUTO).method == "db"

    def test_auto_avoids_treelet_for_wide_palette(self, graph):
        engine = CountingEngine(graph)
        tree = path_query(4, name="p4")
        r = engine.count(tree, trials=1, seed=0, method=AUTO, num_colors=tree.k + 2)
        assert r.method == "db"


class TestBackendParity:
    """All registered backends agree with exact counts on small graphs."""

    def test_cyclic_query_parity(self, graph, rng):
        q = paper_query("glet2")
        colors = rng.integers(0, q.k, size=graph.n)
        expected = count_colorful_matches(graph, q, colors)
        engine = CountingEngine(graph)
        for name in available_backends():
            backend = get_backend(name)
            if not backend.supports(q):
                continue
            assert engine.count_colorful(q, colors, method=name) == expected, name

    def test_tree_query_parity_all_backends(self, graph, rng):
        q = star_query(3, name="star3")
        colors = rng.integers(0, q.k, size=graph.n)
        expected = count_colorful_matches(graph, q, colors)
        engine = CountingEngine(graph)
        for name in available_backends():
            backend = get_backend(name)
            if not backend.supports(q):
                # ps-gpu registers unconditionally but supports() is False
                # without a CUDA device; auto-dispatch never picks it either
                continue
            assert engine.count_colorful(q, colors, method=name) == expected, name

    def test_estimates_agree_with_count_exact(self, rng):
        # with the full palette of a dense tiny graph, averaging many
        # trials lands near the exact count for every backend
        g = erdos_renyi(10, 0.6, rng, name="dense10")
        q = cycle_query(3)
        exact = count_matches(g, q)
        engine = CountingEngine(g)
        for name in ("ps", "db", "ps-even", "bruteforce"):
            est = engine.count(q, trials=60, seed=4, method=name).estimate
            assert est == pytest.approx(exact, rel=0.5), name


class TestPlanCache:
    def test_plan_built_once_across_calls(self, graph, planner_calls):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        engine.count(q, trials=2, seed=0)
        engine.count(q, trials=3, seed=1)
        engine.count_colorful(q, np.zeros(graph.n, dtype=np.int64))
        assert planner_calls == ["glet1"]
        assert engine.stats.plan_builds == 1
        assert engine.stats.plan_cache_hits == 2

    def test_equal_structure_shares_plan(self, graph):
        engine = CountingEngine(graph)
        engine.count(cycle_query(4, name="a"), trials=1, seed=0)
        engine.count(cycle_query(4, name="b"), trials=1, seed=0)  # same structure
        assert engine.stats.plan_builds == 1

    def test_explicit_plan_bypasses_cache(self, graph, planner_calls):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        plan = engine.plan_for(q)
        engine.count(q, trials=1, seed=0, plan=plan)
        assert engine.stats.plan_builds == 1  # only the plan_for call

    def test_clear_caches(self, graph):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        engine.count(q, trials=1, seed=0)
        engine.clear_caches()
        engine.count(q, trials=1, seed=0)
        assert engine.stats.plan_builds == 2

    def test_partition_cache(self, graph):
        engine = CountingEngine(graph, nranks=4)
        q = paper_query("glet1")
        engine.count(q, trials=1, seed=0)
        engine.count(q, trials=1, seed=1)
        assert engine.stats.partition_builds == 1
        assert engine.stats.partition_cache_hits == 1


class TestCountMany:
    def test_fig8_library_bit_identical_to_legacy_loop(self, planner_calls):
        """Acceptance: count_many over the Figure 8 query library matches
        the old per-call path bit for bit, planning each query once."""
        rng = np.random.default_rng(99)
        g = erdos_renyi(24, 0.25, rng, name="fig8-host")
        queries = list(paper_queries().values())

        engine = CountingEngine(g)
        batch = engine.count_many(queries, trials=3, seed=7)

        assert planner_calls == [q.name for q in queries]  # exactly once each
        assert engine.stats.plan_builds == len(queries)

        for q, run in zip(queries, batch):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = estimate_matches(g, q, trials=3, seed=7, method="db")
            assert run.colorful_counts == legacy.colorful_counts, q.name
            assert run.estimate == legacy.estimate, q.name
            assert run.scale == legacy.scale, q.name

    def test_requests_with_per_query_seeds(self, graph):
        engine = CountingEngine(graph)
        reqs = [
            CountRequest(query=cycle_query(3, name="c3"), trials=2, seed=11),
            CountRequest(query=cycle_query(4, name="c4"), trials=4, seed=12),
        ]
        r3, r4 = engine.count_many(reqs)
        assert (r3.trials, r3.seed) == (2, 11)
        assert (r4.trials, r4.seed) == (4, 12)

    def test_overrides_win(self, graph):
        engine = CountingEngine(graph, trials=9)
        (r,) = engine.count_many([cycle_query(3)], trials=2)
        assert r.trials == 2


class TestWorkersAndContexts:
    def test_workers_bit_identical(self, graph):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        seq = engine.count(q, trials=4, seed=3)
        par = engine.count(q, trials=4, seed=3, workers=2)
        assert par.colorful_counts == seq.colorful_counts
        assert par.estimate == seq.estimate
        assert par.workers == 2 and par.trial_times is None
        assert seq.workers == 1 and len(seq.trial_times) == 4

    def test_nranks_attaches_load_stats(self, graph):
        engine = CountingEngine(graph, nranks=4)
        r = engine.count(paper_query("glet1"), trials=2, seed=0)
        assert r.load is not None
        assert r.load.nranks == 4
        assert r.load.total_ops() > 0

    def test_sequential_run_has_no_load_stats(self, graph):
        r = CountingEngine(graph).count(paper_query("glet1"), trials=1, seed=0)
        assert r.load is None

    def test_workers_with_nranks_warns_and_runs_sequentially(self, graph):
        engine = CountingEngine(graph, nranks=2)
        with pytest.warns(UserWarning, match="workers > 1 is ignored"):
            r = engine.count(paper_query("glet1"), trials=2, seed=0, workers=4)
        assert r.workers == 1
        assert r.load is not None

    def test_treelet_rejects_load_tracking(self, graph):
        engine = CountingEngine(graph, nranks=2)
        with pytest.raises(ValueError, match="simulated ranks"):
            engine.count(path_query(3), trials=1, seed=0, method="treelet")

    def test_zero_trials_rejected(self, graph):
        with pytest.raises(ValueError, match="at least one trial"):
            CountingEngine(graph).count(cycle_query(3), trials=0)

    def test_num_colors_below_k_rejected(self, graph):
        with pytest.raises(ValueError, match="colors"):
            CountingEngine(graph).count(cycle_query(4), trials=1, num_colors=2)


class TestRunResult:
    def test_is_estimate_result(self, graph):
        r = CountingEngine(graph).count(cycle_query(3), trials=2, seed=0)
        assert isinstance(r, RunResult)
        assert isinstance(r, EstimateResult)
        assert r.method == "db"
        assert r.plan is not None
        assert r.wall_clock > 0
        assert "method=db" in r.summary()

    def test_config_and_request_immutable(self):
        cfg = EngineConfig()
        with pytest.raises(AttributeError):
            cfg.trials = 3
        req = CountRequest(query=cycle_query(3))
        with pytest.raises(AttributeError):
            req.trials = 3

    def test_request_resolution_inherits_config(self):
        cfg = EngineConfig(trials=7, seed=5, method="ps")
        req = CountRequest(query=cycle_query(3), seed=1).resolved(cfg)
        assert (req.trials, req.seed, req.method) == (7, 1, "ps")


class TestDeprecatedShims:
    def test_stubs_importable_but_raise(self, graph, rng):
        from repro.counting import count, count_colorful, count_exact, make_context
        from repro.counting.api import count as api_count

        assert api_count is count
        q = cycle_query(3)
        colors = rng.integers(0, 3, size=graph.n)
        for call in (
            lambda: count_colorful(graph, q, colors),
            lambda: count(graph, q, trials=2, seed=1),
            lambda: count_exact(graph, q),
            lambda: make_context(graph, nranks=2),
        ):
            with pytest.raises(DeprecationWarning, match="has been removed"):
                call()

    def test_parallel_stub_raises(self, graph):
        from repro.counting import estimate_matches_parallel

        q = paper_query("glet1")
        with pytest.raises(DeprecationWarning, match="workers=N"):
            estimate_matches_parallel(graph, q, trials=3, seed=2, workers=2)

    def test_engine_replaces_shims(self, graph, rng):
        q = cycle_query(3)
        colors = rng.integers(0, 3, size=graph.n)
        engine = CountingEngine(graph)
        assert engine.count_colorful(q, colors) == count_colorful_matches(
            graph, q, colors
        )
        assert engine.count_exact(q) == count_matches(graph, q)
        result = engine.count(q, trials=2, seed=1)
        assert isinstance(result, EstimateResult)
        assert engine.make_context(nranks=2).nranks == 2
