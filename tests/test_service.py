"""Service core: cache, registry, job queue, orchestration, concurrency.

The hammer test is the acceptance bar: N threads of mixed cached /
uncached, sync / async traffic must produce counts bit-identical to
direct engine calls, with exact cache accounting and no cross-request
state corruption.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import CountingEngine, EngineConfig
from repro.graph.generators import erdos_renyi
from repro.graph.io import write_edge_list, write_json_graph
from repro.graph.graph import Graph
from repro.query.library import paper_query
from repro.service import (
    BadRequestError,
    CountingService,
    DatasetRegistry,
    Job,
    JobQueue,
    ResultCache,
    ServiceSaturated,
    UnknownDatasetError,
    UnknownJobError,
    UnknownQueryError,
)

from conftest import wait_until


def small_graph(n=50, p=0.12, seed=7, name="er50"):
    return erdos_renyi(n, p, np.random.default_rng(seed), name=name)


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_eviction_accounting(self):
        cache = ResultCache(capacity=2)
        hit, _ = cache.get("a")
        assert not hit
        cache.put("a", 1)
        cache.put("b", 2)
        hit, value = cache.get("a")  # refreshes 'a'
        assert hit and value == 1
        cache.put("c", 3)  # evicts 'b' (LRU)
        assert "b" not in cache and "a" in cache and "c" in cache
        snap = cache.snapshot()
        assert snap == {"capacity": 2, "size": 2, "hits": 1, "misses": 1, "evictions": 1}

    def test_put_refreshes_value_and_position(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("a") == (True, 10)
        assert cache.get("b") == (False, None)

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)
        assert len(cache) == 0

    def test_thread_exact_counters(self):
        cache = ResultCache(capacity=64)
        cache.put("k", 42)
        threads = [
            threading.Thread(target=lambda: [cache.get("k") for _ in range(200)])
            for _ in range(8)
        ]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert cache.snapshot()["hits"] == 8 * 200


# ----------------------------------------------------------------------
# DatasetRegistry
# ----------------------------------------------------------------------
class TestDatasetRegistry:
    def test_builtin_and_custom(self):
        reg = DatasetRegistry()
        reg.load("condmat")
        reg.add("tiny", small_graph())
        assert reg.names() == ["condmat", "tiny"]
        assert reg.get("tiny").graph.n == 50
        desc = reg.describe()
        assert [d["name"] for d in desc] == ["condmat", "tiny"]
        assert desc[0]["source"] == "builtin"
        reg.close()

    def test_file_specs(self, tmp_path):
        g = small_graph(name="filegraph")
        edge_path = str(tmp_path / "g.edges")
        json_path = str(tmp_path / "g.json")
        write_edge_list(g, edge_path)
        write_json_graph(g, json_path)
        reg = DatasetRegistry()
        a = reg.load(f"alias={edge_path}")
        b = reg.load(json_path)
        assert a.name == "alias" and a.graph.n == g.n and a.graph.m == g.m
        assert b.name == "g.json" and b.graph.m == g.m
        assert sorted(a.graph.edges()) == sorted(g.edges())
        assert sorted(b.graph.edges()) == sorted(g.edges())
        reg.close()

    def test_unknown_dataset(self):
        reg = DatasetRegistry()
        with pytest.raises(UnknownDatasetError, match="nope"):
            reg.get("nope")

    def test_warm_builds_dist_pool(self):
        reg = DatasetRegistry(EngineConfig(method="ps-dist", workers=2))
        reg.add("tiny", small_graph())
        reg.warm("tiny")
        engine = reg.get("tiny").engine
        assert len(engine._executor_cache) == 1
        reg.close()
        assert all(ex.closed for ex in engine._executor_cache.values())


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_execute_success_and_failure(self):
        q = JobQueue(workers=1, depth=4)
        ok = q.submit(Job(lambda: 42, label="ok"))
        bad = q.submit(Job(lambda: 1 / 0, label="bad"))
        assert ok.wait(5.0) and bad.wait(5.0)
        assert ok.state == "done" and ok.result == 42 and ok.progress == 1.0
        assert bad.state == "failed" and "ZeroDivisionError" in bad.error
        stats = q.stats()
        assert stats["completed"] == 1 and stats["failed"] == 1
        q.close()

    def test_admission_control_saturates(self):
        release = threading.Event()
        q = JobQueue(workers=1, depth=1)
        blocker = q.submit(Job(release.wait, label="blocker"))
        assert wait_until(lambda: blocker.state == "running")  # worker picked it up
        queued = q.submit(Job(lambda: 1, label="queued"))
        with pytest.raises(ServiceSaturated):
            q.submit(Job(lambda: 2, label="shed"))
        assert q.stats()["rejected"] == 1
        release.set()
        assert blocker.wait(5.0) and queued.wait(5.0)
        q.close()

    def test_close_cancels_backlog_promptly(self):
        """A full backlog must not stall shutdown for backlog x duration."""
        release = threading.Event()
        q = JobQueue(workers=1, depth=4)
        blocker = q.submit(Job(release.wait, label="blocker"))
        assert wait_until(lambda: blocker.state == "running")
        backlog = [q.submit(Job(lambda: 1)) for _ in range(4)]
        t0 = time.monotonic()
        closer = threading.Thread(target=q.close)
        closer.start()
        # close() must cancel the backlog without waiting on the blocker
        for job in backlog:
            assert job.wait(5.0)
            assert job.state == "failed" and "cancelled" in job.error
        assert q.stats()["cancelled"] == 4
        release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert time.monotonic() - t0 < 10.0
        assert blocker.wait(5.0)

    def test_history_bound_and_unknown_job(self):
        # retention 0: the count bound applies immediately
        q = JobQueue(workers=1, depth=8, history=2, retention_seconds=0.0)
        jobs = [q.submit(Job(lambda i=i: i)) for i in range(3)]
        for j in jobs:
            assert j.wait(5.0)
        # history trim happens after event.set — poll until it lands
        def trimmed() -> bool:
            try:
                q.get(jobs[0].id)
                return False
            except UnknownJobError:
                return True
        assert wait_until(trimmed)
        with pytest.raises(UnknownJobError):
            q.get(jobs[0].id)
        assert q.get(jobs[2].id).result == 2
        q.close()
        q.close()  # idempotent

    def test_recent_jobs_survive_history_floods(self):
        """A just-finished job stays pollable despite the count bound."""
        q = JobQueue(workers=1, depth=8, history=2)  # default 30s retention
        jobs = [q.submit(Job(lambda i=i: i)) for i in range(5)]
        for j in jobs:
            assert j.wait(5.0)
        # post-completion bookkeeping settles asynchronously; the jobs
        # must then all stay pollable (younger than the retention window)
        assert wait_until(lambda: all(j.state == "done" for j in jobs))
        for j in jobs:
            assert q.get(j.id).result is not None
        q.close()


# ----------------------------------------------------------------------
# CountingService
# ----------------------------------------------------------------------
@pytest.fixture
def service():
    svc = CountingService(
        config=EngineConfig(trials=2, seed=0),
        workers=2, queue_depth=16, cache_size=64,
    )
    svc.registry.add("tiny", small_graph())
    yield svc
    svc.close()


class TestCountingService:
    def test_sync_parity_and_cache(self, service):
        q = paper_query("glet1")
        result, cached = service.count("tiny", "glet1", trials=3, seed=1)
        assert not cached
        with CountingEngine(service.registry.get("tiny").graph, service.config) as ref:
            direct = ref.count(q, trials=3, seed=1)
        assert result.colorful_counts == direct.colorful_counts
        assert result.estimate == direct.estimate
        again, cached = service.count("tiny", "glet1", trials=3, seed=1)
        assert cached and again is result  # the exact cached object
        snap = service.cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_async_submit_poll(self, service):
        job = service.submit("tiny", "glet2", seed=4)
        assert job.wait(30.0) and job.state == "done"
        cached_job = service.submit("tiny", "glet2", seed=4)
        assert cached_job.state == "done"
        assert cached_job.result is job.result
        assert service.job(cached_job.id) is cached_job  # pollable like any job

    def test_custom_query_dict(self, service):
        result, _ = service.count("tiny", {"edges": [[0, 1], [1, 2], [2, 0]], "name": "tri"})
        g = service.registry.get("tiny").graph
        from repro.query.library import cycle_query
        with CountingEngine(g, service.config) as ref:
            direct = ref.count(cycle_query(3))
        assert result.colorful_counts == direct.colorful_counts

    def test_error_taxonomy(self, service):
        with pytest.raises(UnknownDatasetError):
            service.count("nope", "glet1")
        with pytest.raises(UnknownQueryError):
            service.count("tiny", "nope")
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", trials=0)
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", method="warp-drive")
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", num_colors=2)
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", frobnicate=1)
        with pytest.raises(BadRequestError):
            service.count("tiny", {"edges": []})
        # JSON value types: garbage rejected eagerly, spellings coerced
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", trials="abc")
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", trials=2.5)
        # untrusted knobs are bounded above: no OOM/fork-bomb requests
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", trials=100_000_000)
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", workers=10_000)
        with pytest.raises(BadRequestError):
            service.count("tiny", "glet1", num_colors=1_000)
        a, _ = service.count("tiny", "glet1", trials="2", seed=8)
        b, cached = service.count("tiny", "glet1", trials=2.0, seed=8)
        assert cached and b is a  # "2" and 2.0 coerce to the same key

    def test_single_flight_dedup(self, service):
        """Concurrent identical misses compute once and share the result."""
        barrier = threading.Barrier(6)
        results = []

        def worker():
            barrier.wait()
            results.append(service.count("tiny", "wiki", seed=9)[0])

        threads = [threading.Thread(target=worker) for _ in range(6)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert len(results) == 6
        assert all(r is results[0] for r in results)
        assert service.stats()["requests"]["computed"] == 1

    def test_close_is_idempotent(self, service):
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.count("tiny", "glet1")


# ----------------------------------------------------------------------
# the hammer: mixed concurrent traffic, bit-identical counts, exact stats
# ----------------------------------------------------------------------
class TestConcurrencyHammer:
    N_THREADS = 8
    OPS_PER_THREAD = 12

    def test_hammer(self):
        config = EngineConfig(trials=2, seed=0)
        service = CountingService(config=config, workers=3, queue_depth=64, cache_size=256)
        graphs = {
            "era": small_graph(seed=1, name="era"),
            "erb": small_graph(n=40, p=0.15, seed=2, name="erb"),
        }
        for name, g in graphs.items():
            service.registry.add(name, g)

        # the request mix: 2 datasets x 2 queries x 3 seeds = 12 unique keys
        keys = [
            (ds, qn, seed)
            for ds in ("era", "erb")
            for qn in ("glet1", "glet2")
            for seed in (0, 1, 2)
        ]
        reference = {}
        for ds, qn, seed in keys:
            with CountingEngine(graphs[ds], config) as ref:
                reference[(ds, qn, seed)] = ref.count(paper_query(qn), seed=seed)

        results: dict = {}
        errors: list = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(self.OPS_PER_THREAD):
                    key = keys[(tid * 5 + i * 7) % len(keys)]
                    ds, qn, seed = key
                    if (tid + i) % 2:
                        job = service.submit(ds, qn, seed=seed)
                        assert job.wait(60.0), "job never finished"
                        assert job.state == "done", job.error
                        run = job.result
                    else:
                        run, _cached = service.count(ds, qn, seed=seed, timeout=60.0)
                    results.setdefault(key, []).append(run)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(self.N_THREADS)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert not errors, errors

        total = self.N_THREADS * self.OPS_PER_THREAD
        # every response bit-identical to the direct engine call
        assert sum(len(v) for v in results.values()) == total
        for key, runs in results.items():
            want = reference[key].colorful_counts
            for run in runs:
                assert run.colorful_counts == want, f"corrupted result for {key}"
                assert run.estimate == reference[key].estimate

        stats = service.stats()
        req = stats["requests"]
        cache = stats["cache"]
        # exact accounting: each unique key computed exactly once (single
        # flight), every admission did exactly one cache lookup
        assert req["computed"] == len(keys)
        assert cache["misses"] == req["computed"] + req["inflight_joins"]
        assert cache["hits"] + cache["misses"] == total
        assert cache["evictions"] == 0
        assert stats["queue"]["completed"] == req["computed"]
        assert stats["queue"]["failed"] == 0 and stats["queue"]["rejected"] == 0
        service.close()


class TestEngineThreadSafety:
    def test_shared_engine_plans_once_and_counts_exactly(self):
        """The service shares one engine per dataset across worker
        threads; plan builds and stats counters must stay exact."""
        engine = CountingEngine(small_graph(), EngineConfig(trials=1))
        q = paper_query("glet1")
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            barrier.wait()
            for i in range(4):
                engine.count(q, seed=seed * 10 + i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        snap = engine.stats.snapshot()
        assert snap["plan_builds"] == 1
        assert snap["plan_cache_hits"] == 8 * 4 - 1
        assert snap["requests"] == 8 * 4
        assert snap["trials"] == 8 * 4
        engine.close()


class TestRegistryGraphSharing:
    def test_graph_object_is_shared_not_copied(self):
        g = small_graph()
        reg = DatasetRegistry()
        entry = reg.add("tiny", g)
        assert entry.graph is g
        assert entry.engine.graph is g
        reg.close()

    def test_reregister_closes_old_engine(self):
        reg = DatasetRegistry(EngineConfig(method="ps-dist", workers=2))
        reg.add("tiny", small_graph())
        reg.warm("tiny")
        old = reg.get("tiny").engine
        pool = next(iter(old._executor_cache.values()))
        entry = reg.add("tiny", small_graph(seed=3))
        assert pool.closed
        assert entry.generation == 1
        reg.close()

    def test_reregister_invalidates_cached_results(self):
        """Replacing a dataset must never serve the old graph's counts."""
        service = CountingService(config=EngineConfig(trials=2, seed=0),
                                  workers=1, queue_depth=8, cache_size=32)
        try:
            service.registry.add("g", small_graph(seed=1))
            before, cached = service.count("g", "glet1")
            assert not cached
            service.registry.add("g", small_graph(n=70, p=0.2, seed=9))
            after, cached = service.count("g", "glet1")
            assert not cached, "stale cache hit across dataset replacement"
            assert after.colorful_counts != before.colorful_counts
        finally:
            service.close()


def test_graph_json_round_trip(tmp_path):
    from repro.graph.io import read_json_graph

    g = Graph(5, [(0, 1), (1, 2), (3, 4)], name="j5")
    path = str(tmp_path / "g.json")
    write_json_graph(g, path)
    back = read_json_graph(path)
    assert back.n == 5 and back.name == "j5"
    assert sorted(back.edges()) == sorted(g.edges())
