"""HTTP surface end to end: every endpoint, error mapping, 429, parity.

Boots a real :class:`ServiceHTTPServer` on an ephemeral port and drives
it with the stdlib :class:`ServiceClient` — the acceptance path: a
booted service must answer ``POST /count`` bit-identically to
:meth:`CountingEngine.count` for the whole Figure 8 query library, serve
repeats from the cache (visible in ``GET /stats``), and shed load with
429 when saturated.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import CountingEngine, EngineConfig
from repro.graph.generators import erdos_renyi
from repro.query.library import paper_queries
from repro.service import CountingService, Job
from repro.service.client import SaturatedError, ServiceAPIError, ServiceClient, self_test
from repro.service.httpd import make_server, serve_forever

CONFIG = EngineConfig(method="ps-vec", trials=2, seed=0)


@pytest.fixture(scope="module")
def stack():
    """(service, server, client) booted once for the module."""
    service = CountingService(config=CONFIG, workers=2, queue_depth=16, cache_size=128)
    service.registry.add(
        "er60", erdos_renyi(60, 0.12, np.random.default_rng(42), name="er60")
    )
    server = make_server(service, port=0)
    thread = serve_forever(server)
    client = ServiceClient(server.url)
    yield service, server, client
    client.close()
    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()
    service.close()


class TestEndpoints:
    def test_healthz_and_datasets(self, stack):
        _, _, client = stack
        health = client.healthz()
        assert health["ok"] and health["datasets"] == 1
        (ds,) = client.datasets()
        assert ds["name"] == "er60" and ds["n"] == 60

    def test_count_cold_then_cached(self, stack):
        service, _, client = stack
        result, cached = client.count("er60", "glet1", trials=3, seed=2)
        assert not cached and result["method"] == "ps-vec"
        hits_before = service.cache.snapshot()["hits"]
        again, cached = client.count("er60", "glet1", trials=3, seed=2)
        assert cached
        assert again["colorful_counts"] == result["colorful_counts"]
        assert service.cache.snapshot()["hits"] == hits_before + 1

    def test_jobs_lifecycle(self, stack):
        _, _, client = stack
        job = client.submit("er60", "glet2", seed=6)
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done" and done["progress"] == 1.0
        assert done["result"]["trials"] == CONFIG.trials
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_stats_shape(self, stack):
        _, _, client = stack
        stats = client.stats()
        for section in ("uptime_seconds", "requests", "cache", "queue", "datasets"):
            assert section in stats
        assert stats["queue"]["workers"] == 2

    def test_error_mapping(self, stack):
        _, _, client = stack
        for kwargs, status in (
            (dict(dataset="nope", query="glet1"), 404),
            (dict(dataset="er60", query="nope"), 404),
            (dict(dataset="er60", query="glet1", trials=0), 400),
            (dict(dataset="er60", query="glet1", method="warp"), 400),
        ):
            with pytest.raises(ServiceAPIError) as err:
                client.count(**kwargs)
            assert err.value.status == status
        with pytest.raises(ServiceAPIError) as err:
            client.job("doesnotexist")
        assert err.value.status == 404

    def test_unknown_endpoint_404(self, stack):
        _, _, client = stack
        with pytest.raises(ServiceAPIError) as err:
            client._request("GET", "/teapot")
        assert err.value.status == 404
        with pytest.raises(ServiceAPIError) as err:
            client._request("POST", "/count", None)  # no body
        assert err.value.status == 400

    def test_client_self_test_passes(self, stack):
        _, server, _ = stack
        assert self_test(server.url, dataset="er60", query="glet1") == 0


class TestWholeQueryLibraryParity:
    def test_counts_bit_identical_for_every_paper_query(self, stack):
        """Acceptance: POST /count == CountingEngine.count, all 10 queries."""
        service, _, client = stack
        graph = service.registry.get("er60").graph
        with CountingEngine(graph, CONFIG) as engine:
            for name, query in paper_queries().items():
                result, _cached = client.count("er60", name, trials=2, seed=3)
                direct = engine.count(query, trials=2, seed=3)
                assert result["colorful_counts"] == direct.colorful_counts, name
                assert result["estimate"] == pytest.approx(direct.estimate), name
                assert result["method"] == direct.method == "ps-vec"


class TestServeCLI:
    def test_run_serve_boots_and_stops(self, tmp_path):
        """`repro-serve` wiring end to end: parse, boot, answer, shut down."""
        import socket

        from repro.graph.io import write_json_graph
        from repro.service.cli import main as serve_main, run_serve

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        path = str(tmp_path / "tiny.json")
        write_json_graph(
            erdos_renyi(25, 0.2, np.random.default_rng(5), name="tiny"), path
        )

        import argparse

        parser = argparse.ArgumentParser()
        from repro.cli import add_serve_arguments

        add_serve_arguments(parser)
        args = parser.parse_args([
            "--port", str(port), "--dataset", f"tiny={path}",
            "--trials", "2", "--workers", "1", "--queue-depth", "4",
        ])
        stop = threading.Event()
        rc: list = []
        thread = threading.Thread(target=lambda: rc.append(run_serve(args, stop=stop)))
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    assert client.healthz()["ok"]
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                pytest.fail("server never came up")
            result, _ = client.count("tiny", "glet1")
            assert result["trials"] == 2
            client.close()
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert rc == [0]
        # bad dataset spec fails fast with exit code 2
        assert serve_main(["--dataset", "/nonexistent/file.edges", "--port", "0"]) == 2


class TestSaturation:
    def test_429_when_queue_full(self):
        """Block the only worker, fill the backlog, expect 429 + Retry-After."""
        service = CountingService(config=CONFIG, workers=1, queue_depth=1, cache_size=8)
        service.registry.add(
            "er30", erdos_renyi(30, 0.15, np.random.default_rng(3), name="er30")
        )
        server = make_server(service, port=0)
        thread = serve_forever(server)
        release = threading.Event()
        try:
            blocker = service.queue.submit(Job(release.wait, label="blocker"))
            deadline = time.monotonic() + 5.0
            while blocker.state == "queued" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert blocker.state == "running"
            filler = service.queue.submit(Job(lambda: None, label="filler"))
            with ServiceClient(server.url) as client:
                with pytest.raises(SaturatedError) as err:
                    client.count("er30", "glet1")
                assert err.value.status == 429
                release.set()
                assert blocker.wait(5.0) and filler.wait(5.0)
                result, _ = client.count("er30", "glet1", timeout=60.0)
                assert result["trials"] == CONFIG.trials
            assert service.queue.stats()["rejected"] == 1
        finally:
            release.set()
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()
