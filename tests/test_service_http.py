"""HTTP surface end to end: every endpoint, error mapping, 429, parity.

Boots a real :class:`ServiceHTTPServer` on an ephemeral port and drives
it with the stdlib :class:`ServiceClient` — the acceptance path: a
booted service must answer ``POST /count`` bit-identically to
:meth:`CountingEngine.count` for the whole Figure 8 query library, serve
repeats from the cache (visible in ``GET /stats``), and shed load with
429 when saturated.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from conftest import wait_until

from repro.engine import CountingEngine, EngineConfig
from repro.graph.generators import erdos_renyi
from repro.query.library import paper_queries
from repro.service import CountingService, Job
from repro.service.client import SaturatedError, ServiceAPIError, ServiceClient, self_test
from repro.service.httpd import make_server, serve_forever

CONFIG = EngineConfig(method="ps-vec", trials=2, seed=0)


@pytest.fixture(scope="module")
def stack():
    """(service, server, client) booted once for the module."""
    service = CountingService(config=CONFIG, workers=2, queue_depth=16, cache_size=128)
    g = erdos_renyi(60, 0.12, np.random.default_rng(42), name="er60")
    service.registry.add("er60", g)
    service.registry.add(
        "er60l",
        g.with_labels(np.random.default_rng(43).integers(0, 2, g.n)),
    )
    server = make_server(service, port=0)
    thread = serve_forever(server)
    client = ServiceClient(server.url)
    yield service, server, client
    client.close()
    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()
    service.close()


class TestEndpoints:
    def test_healthz_and_datasets(self, stack):
        _, _, client = stack
        health = client.healthz()
        assert health["ok"] and health["datasets"] == 2
        by_name = {ds["name"]: ds for ds in client.datasets()}
        assert set(by_name) == {"er60", "er60l"}
        assert by_name["er60"]["n"] == 60

    def test_count_cold_then_cached(self, stack):
        service, _, client = stack
        result, cached = client.count("er60", "glet1", trials=3, seed=2)
        assert not cached and result["method"] == "ps-vec"
        hits_before = service.cache.snapshot()["hits"]
        again, cached = client.count("er60", "glet1", trials=3, seed=2)
        assert cached
        assert again["colorful_counts"] == result["colorful_counts"]
        assert service.cache.snapshot()["hits"] == hits_before + 1

    def test_jobs_lifecycle(self, stack):
        _, _, client = stack
        job = client.submit("er60", "glet2", seed=6)
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done" and done["progress"] == 1.0
        assert done["result"]["trials"] == CONFIG.trials
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_stats_shape(self, stack):
        _, _, client = stack
        stats = client.stats()
        for section in ("uptime_seconds", "requests", "cache", "queue", "datasets"):
            assert section in stats
        assert stats["queue"]["workers"] == 2

    def test_error_mapping(self, stack):
        _, _, client = stack
        for kwargs, status in (
            (dict(dataset="nope", query="glet1"), 404),
            (dict(dataset="er60", query="nope"), 404),
            (dict(dataset="er60", query="glet1", trials=0), 400),
            (dict(dataset="er60", query="glet1", method="warp"), 400),
        ):
            with pytest.raises(ServiceAPIError) as err:
                client.count(**kwargs)
            assert err.value.status == status
        with pytest.raises(ServiceAPIError) as err:
            client.job("doesnotexist")
        assert err.value.status == 404

    def test_unknown_endpoint_404(self, stack):
        _, _, client = stack
        with pytest.raises(ServiceAPIError) as err:
            client._request("GET", "/teapot")
        assert err.value.status == 404
        with pytest.raises(ServiceAPIError) as err:
            client._request("POST", "/count", None)  # no body
        assert err.value.status == 400

    def test_client_self_test_passes(self, stack):
        _, server, _ = stack
        assert self_test(server.url, dataset="er60", query="glet1") == 0


class TestWholeQueryLibraryParity:
    def test_counts_bit_identical_for_every_paper_query(self, stack):
        """Acceptance: POST /count == CountingEngine.count, all 10 queries."""
        service, _, client = stack
        graph = service.registry.get("er60").graph
        with CountingEngine(graph, CONFIG) as engine:
            for name, query in paper_queries().items():
                result, _cached = client.count("er60", name, trials=2, seed=3)
                direct = engine.count(query, trials=2, seed=3)
                assert result["colorful_counts"] == direct.colorful_counts, name
                assert result["estimate"] == pytest.approx(direct.estimate), name
                assert result["method"] == direct.method == "ps-vec"


class TestLabeledWireFormat:
    def test_count_with_labels_parity_and_cache_key(self, stack):
        """POST /count with a label spec == engine.count on the labeled query,
        and the dict / list label spellings share one cache entry."""
        service, _, client = stack
        graph = service.registry.get("er60l").graph
        base = paper_queries()["glet1"]
        labels = {str(v): v % 2 for v in base.nodes()}
        result, cached = client.count("er60l", "glet1", seed=4, labels=labels)
        assert not cached
        with CountingEngine(graph, CONFIG) as engine:
            direct = engine.count(
                base.with_labels({v: v % 2 for v in base.nodes()}), seed=4
            )
        assert result["colorful_counts"] == direct.colorful_counts
        # list spelling, same fingerprint -> served from cache
        as_list = [labels[str(v)] for v in base.nodes()]
        again, cached = client.count("er60l", "glet1", seed=4, labels=as_list)
        assert cached and again["colorful_counts"] == result["colorful_counts"]

    def test_labeled_library_name_over_the_wire(self, stack):
        _, _, client = stack
        result, _ = client.count("er60l", "tri-001", seed=1)
        assert result["trials"] == CONFIG.trials

    def test_labeled_error_mapping(self, stack):
        _, _, client = stack
        for kwargs, status, fragment in (
            # labeled query, unlabeled dataset
            (dict(dataset="er60", query="tri-001"), 400, "no vertex labels"),
            # partial label map
            (dict(dataset="er60l", query="glet1", labels={"0": 1}), 400, "cover every"),
            # wrong list arity
            (dict(dataset="er60l", query="glet1", labels=[0, 1]), 400, "one label per"),
            # non-integer label
            (dict(dataset="er60l", query="glet1",
                  labels={"0": "x", "1": 0, "2": 0, "3": 0}), 400, "need int"),
            # out-of-range label
            (dict(dataset="er60l", query="glet1",
                  labels=[0, 1, 0, 2**40]), 400, "must be in"),
        ):
            with pytest.raises(ServiceAPIError) as err:
                client.count(**kwargs)
            assert err.value.status == status, kwargs
            assert fragment in str(err.value), kwargs

    def test_unsupported_method_combinations_answer_400(self, stack):
        """Requests no backend could ever run are shed eagerly with the
        backend's own reason, not queued into a 500."""
        _, _, client = stack
        with pytest.raises(ServiceAPIError) as err:
            client.count("er60l", "tri-001", method="treelet")
        assert err.value.status == 400 and "treelet" in str(err.value)
        # palette over ps-vec's 62-color cap (but under MAX_NUM_COLORS)
        with pytest.raises(ServiceAPIError) as err:
            client.count("er60", "glet1", method="ps-vec", num_colors=63)
        assert err.value.status == 400 and "ps-vec" in str(err.value)

    def test_labeled_async_job(self, stack):
        _, _, client = stack
        job = client.submit("er60l", "square-0101", seed=8)
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "done"

    def test_labels_nested_in_custom_query_spec(self, stack):
        """An ad-hoc query dict may carry its own labels; unknown spec
        fields are rejected instead of silently dropped."""
        service, _, client = stack
        spec = {"edges": [[0, 1], [1, 2], [2, 0]], "labels": [0, 0, 1], "name": "tri"}
        result, _ = client.count("er60l", spec, seed=2)
        graph = service.registry.get("er60l").graph
        from repro.query.query import QueryGraph

        labeled = QueryGraph(
            [(0, 1), (1, 2), (2, 0)], name="tri", labels={0: 0, 1: 0, 2: 1}
        )
        with CountingEngine(graph, CONFIG) as engine:
            direct = engine.count(labeled, seed=2)
        assert result["colorful_counts"] == direct.colorful_counts
        with pytest.raises(ServiceAPIError) as err:
            client.count("er60l", {"edges": [[0, 1]], "lables": [0, 0]})
        assert err.value.status == 400 and "unknown query spec fields" in str(err.value)


class TestServeCLI:
    def test_run_serve_boots_and_stops(self, tmp_path):
        """`repro-serve` wiring end to end: parse, boot, answer, shut down."""
        import socket

        from repro.graph.io import write_json_graph
        from repro.service.cli import main as serve_main, run_serve

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        path = str(tmp_path / "tiny.json")
        write_json_graph(
            erdos_renyi(25, 0.2, np.random.default_rng(5), name="tiny"), path
        )

        import argparse

        parser = argparse.ArgumentParser()
        from repro.cli import add_serve_arguments

        add_serve_arguments(parser)
        args = parser.parse_args([
            "--port", str(port), "--dataset", f"tiny={path}",
            "--trials", "2", "--workers", "1", "--queue-depth", "4",
        ])
        stop = threading.Event()
        rc: list = []
        thread = threading.Thread(target=lambda: rc.append(run_serve(args, stop=stop)))
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")

            def server_up() -> bool:
                try:
                    return bool(client.healthz()["ok"])
                except OSError:
                    return False

            assert wait_until(server_up, timeout=10.0), "server never came up"
            result, _ = client.count("tiny", "glet1")
            assert result["trials"] == 2
            client.close()
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert rc == [0]
        # bad dataset spec fails fast with exit code 2
        assert serve_main(["--dataset", "/nonexistent/file.edges", "--port", "0"]) == 2


class TestSaturation:
    def test_429_when_queue_full(self):
        """Block the only worker, fill the backlog, expect 429 + Retry-After."""
        service = CountingService(config=CONFIG, workers=1, queue_depth=1, cache_size=8)
        service.registry.add(
            "er30", erdos_renyi(30, 0.15, np.random.default_rng(3), name="er30")
        )
        server = make_server(service, port=0)
        thread = serve_forever(server)
        release = threading.Event()
        try:
            blocker = service.queue.submit(Job(release.wait, label="blocker"))
            assert wait_until(lambda: blocker.state == "running")
            filler = service.queue.submit(Job(lambda: None, label="filler"))
            with ServiceClient(server.url) as client:
                with pytest.raises(SaturatedError) as err:
                    client.count("er30", "glet1")
                assert err.value.status == 429
                release.set()
                assert blocker.wait(5.0) and filler.wait(5.0)
                result, _ = client.count("er30", "glet1", timeout=60.0)
                assert result["trials"] == CONFIG.trials
            assert service.queue.stats()["rejected"] == 1
        finally:
            release.set()
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()


class TestObservability:
    """The /metrics surface, trace-ID headers, and the access log."""

    def test_metrics_endpoint_reconciles_with_client_traffic(self, stack):
        from repro.obs import parse_prometheus_text

        _, _, client = stack
        before = parse_prometheus_text(client.metrics_text())

        def sample(doc, name, **labels):
            return float(doc.get(name, {}).get(tuple(sorted(labels.items())), 0.0))

        # one cold count (unique seed for this test) and one warm repeat
        client.count("er60", "glet1", trials=2, seed=987_001)
        _, cached = client.count("er60", "glet1", trials=2, seed=987_001)
        assert cached
        after = parse_prometheus_text(client.metrics_text())

        def delta(name, **labels):
            return sample(after, name, **labels) - sample(before, name, **labels)

        assert delta("repro_service_cache_total", result="miss") == 1.0
        assert delta("repro_service_cache_total", result="hit") == 1.0
        assert delta("repro_http_requests_total",
                     endpoint="/count", method="POST", status="200") == 2.0
        assert delta("repro_http_request_seconds_count", endpoint="/count") == 2.0

    def test_trace_id_header_and_result_stamp(self, stack):
        import http.client

        _, server, client = stack
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            body = json.dumps({
                "dataset": "er60", "query": "glet1", "trials": 2, "seed": 987_002,
            })
            conn.request("POST", "/count", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            header_id = response.getheader("X-Repro-Trace-Id")
            doc = json.loads(response.read())
        finally:
            conn.close()
        assert header_id and len(header_id) == 16
        # the request-scoped trace id threads through to the engine result
        assert doc["result"]["trace_id"] == header_id

    def test_access_log_emits_structured_json_lines(self, capsys):
        service = CountingService(config=CONFIG, workers=1, queue_depth=4, cache_size=8)
        service.registry.add(
            "er20", erdos_renyi(20, 0.2, np.random.default_rng(5), name="er20")
        )
        server = make_server(service, port=0, access_log=True)
        thread = serve_forever(server)
        try:
            with ServiceClient(server.url) as client:
                client.healthz()
                with pytest.raises(ServiceAPIError):
                    client.job("missing")
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()
        lines = [json.loads(line) for line in capsys.readouterr().err.splitlines()
                 if line.startswith("{")]
        assert len(lines) == 2
        for doc in lines:
            assert set(doc) == {"ts", "method", "path", "status",
                                "duration_ms", "trace_id"}
        assert lines[0]["path"] == "/healthz" and lines[0]["status"] == 200
        assert lines[1]["path"] == "/jobs/missing" and lines[1]["status"] == 404

    def test_stats_carries_obs_snapshot(self, stack):
        _, _, client = stack
        stats = client.stats()
        assert "obs" in stats
        assert "repro_http_requests_total" in stats["obs"]
