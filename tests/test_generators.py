"""Tests for the random-graph generators."""

import numpy as np
import pytest

from repro.graph import (
    chung_lu,
    chung_lu_power_law,
    erdos_renyi,
    grid_road_network,
    random_tree,
    ring_of_cliques,
    rmat,
)
from repro.graph.degree import truncated_power_law_sequence, zipf_degree_sequence


class TestErdosRenyi:
    def test_p_zero_empty(self, rng):
        g = erdos_renyi(20, 0.0, rng)
        assert g.m == 0

    def test_p_one_complete(self, rng):
        g = erdos_renyi(10, 1.0, rng)
        assert g.m == 45

    def test_edge_count_concentrates(self, rng):
        g = erdos_renyi(100, 0.2, rng)
        expected = 0.2 * 100 * 99 / 2
        assert abs(g.m - expected) < 0.25 * expected

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, rng)


class TestChungLu:
    def test_respects_expected_degrees(self, rng):
        n = 400
        degrees = np.full(n, 6.0)
        g = chung_lu(degrees, rng)
        assert abs(g.avg_degree() - 6.0) < 1.5

    def test_zero_degrees(self, rng):
        g = chung_lu(np.zeros(5), rng)
        assert g.m == 0

    def test_power_law_variant_is_skewed(self, rng):
        g = chung_lu_power_law(500, 1.5, rng)
        assert g.degree_skew() > 2.0

    def test_deterministic_given_seed(self):
        a = chung_lu(np.full(50, 4.0), np.random.default_rng(7))
        b = chung_lu(np.full(50, 4.0), np.random.default_rng(7))
        assert a == b


class TestRmat:
    def test_size(self, rng):
        g = rmat(8, 4, rng)
        assert g.n == 256
        # dedupe/self-loop removal shrinks below the target
        assert 0 < g.m <= 4 * 256

    def test_skewed_by_default(self, rng):
        g = rmat(9, 8, rng)
        assert g.degree_skew() > 3.0

    def test_invalid_probabilities(self, rng):
        with pytest.raises(ValueError):
            rmat(5, 4, rng, a=0.9, b=0.2, c=0.2, d=0.2)


class TestStructuredGenerators:
    def test_grid_low_skew(self, rng):
        g = grid_road_network(20, 20, rng, rewire_prob=0.0)
        assert g.n == 400
        assert g.max_degree() <= 4

    def test_grid_edge_count(self, rng):
        g = grid_road_network(5, 5, rng, rewire_prob=0.0)
        assert g.m == 2 * 5 * 4  # 2 * rows * (cols-1)

    def test_random_tree_is_tree(self, rng):
        g = random_tree(30, rng)
        assert g.m == 29

    def test_ring_of_cliques(self):
        g = ring_of_cliques(3, 4)
        assert g.n == 12
        assert g.m == 3 * 6 + 3


class TestDegreeSequences:
    def test_truncated_power_law_length(self, rng):
        seq = truncated_power_law_sequence(256, 1.5, rng=rng)
        assert len(seq) == 256
        assert seq.min() >= 1
        assert seq.max() <= 16  # sqrt(256)

    def test_truncated_power_law_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            truncated_power_law_sequence(100, 2.5)

    def test_zipf_sequence_hits_average(self, rng):
        seq = zipf_degree_sequence(500, 2.0, 6.0, max_degree=100)
        assert abs(seq.mean() - 6.0) < 1.0
        assert seq.max() <= 100

    def test_zipf_sequence_skewed(self):
        seq = zipf_degree_sequence(500, 1.9, 4.0, max_degree=120)
        assert seq.max() / seq.mean() > 10
