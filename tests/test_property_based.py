"""Hypothesis property tests on the core invariants.

Strategies generate random small data graphs, random colorings and random
treewidth-2 queries; the properties assert the algorithm-agreement and
estimator invariants that the whole system rests on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.counting import (
    count_colorful_db,
    count_colorful_matches,
    count_colorful_ps,
    count_colorful_treelet,
    count_matches,
)
from repro.graph import Graph
from repro.query import (
    QueryGraph,
    cycle_query,
    is_treewidth_at_most_2,
    paper_queries,
    path_query,
    star_query,
)
from repro.tables.signatures import sig_disjoint_except, sig_from_colors


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

@st.composite
def small_graphs(draw, max_n=10):
    n = draw(st.integers(min_value=3, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    return Graph(n, edges)


@st.composite
def tw2_queries(draw):
    """A grab-bag of treewidth-≤2 query shapes."""
    kind = draw(st.sampled_from(["cycle", "path", "star", "paper", "glued"]))
    if kind == "cycle":
        return cycle_query(draw(st.integers(3, 6)))
    if kind == "path":
        return path_query(draw(st.integers(2, 5)))
    if kind == "star":
        return star_query(draw(st.integers(2, 4)))
    if kind == "paper":
        name = draw(st.sampled_from(["glet1", "glet2", "youtube", "wiki"]))
        return paper_queries()[name]
    # glued: two cycles sharing one node
    l1 = draw(st.integers(3, 4))
    l2 = draw(st.integers(3, 4))
    edges = [(i, (i + 1) % l1) for i in range(l1)]
    offset = l1
    ring2 = [0] + list(range(offset, offset + l2 - 1))
    edges += [(ring2[i], ring2[(i + 1) % l2]) for i in range(l2)]
    return QueryGraph(edges)


@st.composite
def colored_instances(draw):
    g = draw(small_graphs())
    q = draw(tw2_queries())
    colors = draw(
        st.lists(
            st.integers(0, q.k - 1), min_size=g.n, max_size=g.n
        )
    )
    return g, q, np.array(colors, dtype=np.int64)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(colored_instances())
def test_ps_db_bruteforce_agree(instance):
    """The fundamental invariant: all three counters agree exactly."""
    g, q, colors = instance
    expected = count_colorful_matches(g, q, colors)
    assert count_colorful_ps(g, q, colors) == expected
    assert count_colorful_db(g, q, colors) == expected


@settings(max_examples=25, deadline=None)
@given(colored_instances())
def test_colorful_bounded_by_matches(instance):
    g, q, colors = instance
    assert count_colorful_matches(g, q, colors) <= count_matches(g, q)


@settings(max_examples=25, deadline=None)
@given(small_graphs(), st.integers(2, 5), st.data())
def test_treelet_agrees_on_trees(g, k, data):
    q = path_query(k)
    colors = np.array(
        data.draw(st.lists(st.integers(0, k - 1), min_size=g.n, max_size=g.n)),
        dtype=np.int64,
    )
    assert count_colorful_treelet(g, q, colors) == count_colorful_matches(g, q, colors)


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_generated_queries_have_tw2(g):
    """Strategy sanity: tw2_queries really produces treewidth-≤2 graphs."""
    # (checked indirectly: the recognizer accepts what the strategies emit)
    for q in [cycle_query(4), star_query(3)]:
        assert is_treewidth_at_most_2(q)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
    st.lists(st.integers(0, 7), min_size=1, max_size=6),
)
def test_signature_join_condition_is_exact_intersection(ca, cb):
    a, b = sig_from_colors(ca), sig_from_colors(cb)
    shared = a & b
    assert sig_disjoint_except(a, b, shared)
    # any other claimed 'shared' set must fail
    if shared != 0:
        assert not sig_disjoint_except(a, b, 0)


@settings(max_examples=20, deadline=None)
@given(small_graphs(max_n=8), st.integers(3, 5))
def test_relabeling_invariance(g, length):
    """Counts are invariant under relabeling the data graph's vertices."""
    rng = np.random.default_rng(0)
    perm = rng.permutation(g.n)
    remapped = Graph(g.n, [(int(perm[u]), int(perm[v])) for u, v in g.edges()])
    q = cycle_query(length)
    colors = rng.integers(0, length, size=g.n)
    colors_remapped = np.empty_like(colors)
    colors_remapped[perm] = colors
    a = count_colorful_db(g, q, colors)
    b = count_colorful_db(remapped, q, colors_remapped)
    assert a == b
