"""Tests for automorphism counting (match -> subgraph conversion)."""

import pytest

from repro.query import (
    QueryGraph,
    automorphism_count,
    cycle_query,
    matches_to_subgraphs,
    paper_query,
    path_query,
    star_query,
)


class TestKnownGroups:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: cycle_query(3), 6),     # dihedral D3
            (lambda: cycle_query(4), 8),     # D4
            (lambda: cycle_query(5), 10),    # D5
            (lambda: cycle_query(6), 12),    # D6
            (lambda: path_query(2), 2),
            (lambda: path_query(3), 2),
            (lambda: path_query(4), 2),
            (lambda: star_query(3), 6),      # 3! leaf permutations
            (lambda: star_query(4), 24),
        ],
    )
    def test_values(self, builder, expected):
        assert automorphism_count(builder()) == expected

    def test_complete_graph(self):
        k4 = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert automorphism_count(k4) == 24

    def test_single_node(self):
        assert automorphism_count(QueryGraph([], nodes=[0])) == 1

    def test_tailed_triangle(self):
        # triangle with a tail of length 2: identity + the 0<->1 swap
        q = QueryGraph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        assert automorphism_count(q) == 2

    def test_asymmetric_query(self):
        # triangle with tails of different lengths: only the identity
        q = QueryGraph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (0, 5)])
        assert automorphism_count(q) == 1

    def test_diamond(self):
        q = paper_query("glet2")
        assert automorphism_count(q) == 4  # swap degree-2 pair x swap degree-3 pair


class TestConversion:
    def test_matches_to_subgraphs(self):
        c4 = cycle_query(4)
        assert matches_to_subgraphs(80, c4) == pytest.approx(10.0)

    def test_triangle_in_k3(self, triangle_graph):
        from repro.counting import count_matches

        c3 = cycle_query(3)
        matches = count_matches(triangle_graph, c3)
        assert matches == 6  # 3! injective mappings
        assert matches_to_subgraphs(matches, c3) == pytest.approx(1.0)
