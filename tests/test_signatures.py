"""Tests for color-signature bitmask operations."""


from repro.tables import (
    all_signatures,
    color_bit,
    empty_signature,
    full_signature,
    sig_add,
    sig_colors,
    sig_contains,
    sig_disjoint_except,
    sig_from_colors,
    sig_intersection,
    sig_size,
    sig_union,
)


class TestBasics:
    def test_empty(self):
        assert empty_signature() == 0
        assert sig_size(empty_signature()) == 0

    def test_full(self):
        assert full_signature(4) == 0b1111
        assert sig_size(full_signature(10)) == 10

    def test_color_bit(self):
        assert color_bit(0) == 1
        assert color_bit(3) == 8

    def test_from_colors_roundtrip(self):
        sig = sig_from_colors([0, 2, 5])
        assert sig_colors(sig) == [0, 2, 5]
        assert sig_size(sig) == 3

    def test_contains(self):
        sig = sig_from_colors([1, 3])
        assert sig_contains(sig, 1)
        assert not sig_contains(sig, 2)

    def test_add_idempotent(self):
        sig = sig_add(sig_add(0, 2), 2)
        assert sig == color_bit(2)

    def test_union_intersection(self):
        a = sig_from_colors([0, 1])
        b = sig_from_colors([1, 2])
        assert sig_union(a, b) == sig_from_colors([0, 1, 2])
        assert sig_intersection(a, b) == sig_from_colors([1])


class TestJoinCondition:
    def test_disjoint_except_holds(self):
        a = sig_from_colors([0, 1, 2])
        b = sig_from_colors([2, 3, 4])
        assert sig_disjoint_except(a, b, sig_from_colors([2]))

    def test_disjoint_except_fails_extra_overlap(self):
        a = sig_from_colors([0, 1, 2])
        b = sig_from_colors([1, 2, 3])
        assert not sig_disjoint_except(a, b, sig_from_colors([2]))

    def test_disjoint_except_fails_missing_shared(self):
        a = sig_from_colors([0, 1])
        b = sig_from_colors([2, 3])
        assert not sig_disjoint_except(a, b, sig_from_colors([1]))


class TestEnumeration:
    def test_all_signatures_count(self):
        assert len(list(all_signatures(5))) == 32

    def test_all_signatures_distinct(self):
        sigs = list(all_signatures(4))
        assert len(set(sigs)) == 16
