"""Tests for the FASCIA-style treelet dynamic program."""

import numpy as np
import pytest

from repro.counting import (
    count_colorful_db,
    count_colorful_matches,
    count_colorful_treelet,
)
from repro.graph import erdos_renyi, random_tree
from repro.query import (
    QueryGraph,
    complete_binary_tree,
    cycle_query,
    path_query,
    star_query,
)


class TestTreeletDP:
    def test_rejects_cyclic_query(self, triangle_graph):
        with pytest.raises(ValueError, match="acyclic"):
            count_colorful_treelet(triangle_graph, cycle_query(3), [0, 1, 2])

    def test_rejects_bad_coloring_length(self, triangle_graph):
        with pytest.raises(ValueError):
            count_colorful_treelet(triangle_graph, path_query(2), [0])

    def test_single_node(self, petersen_graph):
        q = QueryGraph([], nodes=["r"])
        assert count_colorful_treelet(petersen_graph, q, np.zeros(10, int)) == 10

    def test_edge_query_hand_count(self, triangle_graph):
        colors = np.array([0, 1, 1])
        assert count_colorful_treelet(triangle_graph, path_query(2), colors) == 4

    @pytest.mark.parametrize("qbuilder", [
        lambda: path_query(3),
        lambda: path_query(5),
        lambda: star_query(3),
        lambda: complete_binary_tree(2),
    ])
    def test_agrees_with_bruteforce(self, qbuilder, rng):
        q = qbuilder()
        for _ in range(3):
            g = erdos_renyi(10, 0.4, rng)
            colors = rng.integers(0, q.k, size=g.n)
            assert count_colorful_treelet(g, q, colors) == count_colorful_matches(
                g, q, colors
            )

    def test_agrees_with_db_on_trees(self, rng):
        """The paper's framework subsumes trees: DB == treelet DP."""
        q = complete_binary_tree(2)
        g = erdos_renyi(12, 0.35, rng)
        colors = rng.integers(0, q.k, size=g.n)
        assert count_colorful_treelet(g, q, colors) == count_colorful_db(g, q, colors)

    def test_tree_data_graph(self, rng):
        g = random_tree(15, rng)
        q = path_query(4)
        colors = rng.integers(0, 4, size=g.n)
        assert count_colorful_treelet(g, q, colors) == count_colorful_matches(
            g, q, colors
        )
