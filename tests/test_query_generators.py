"""Tests for the random treewidth-2 query generators."""

import pytest

from repro.query import (
    is_treewidth_at_most_2,
    random_cactus,
    random_partial_two_tree,
    random_series_parallel,
    random_tw2_query,
)

# this module deliberately exercises the deprecated pre-engine shim API
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")



class TestSeriesParallel:
    def test_always_tw2(self, rng):
        for _ in range(20):
            q = random_series_parallel(int(rng.integers(1, 10)), rng)
            assert is_treewidth_at_most_2(q)

    def test_connected(self, rng):
        for _ in range(10):
            assert random_series_parallel(5, rng).is_connected()

    def test_zero_ops_is_edge(self, rng):
        q = random_series_parallel(0, rng)
        assert q.k == 2 and q.num_edges() == 1

    def test_grows_with_ops(self, rng):
        q = random_series_parallel(8, rng)
        assert q.k == 10  # one new node per operation + 2 terminals


class TestPartialTwoTree:
    def test_always_tw2_and_connected(self, rng):
        for _ in range(20):
            q = random_partial_two_tree(int(rng.integers(3, 11)), rng)
            assert is_treewidth_at_most_2(q)
            assert q.is_connected()

    def test_requested_size(self, rng):
        assert random_partial_two_tree(7, rng).k == 7

    def test_no_sparsify_is_two_tree(self, rng):
        q = random_partial_two_tree(6, rng, sparsify=0.0)
        assert q.num_edges() == 2 * 6 - 3  # 2-tree edge count

    def test_tiny(self, rng):
        assert random_partial_two_tree(1, rng).k == 1
        assert random_partial_two_tree(2, rng).k == 2


class TestCactus:
    def test_always_tw2(self, rng):
        for _ in range(15):
            q = random_cactus(int(rng.integers(1, 4)), rng)
            assert is_treewidth_at_most_2(q)
            assert q.is_connected()

    def test_single_cycle(self, rng):
        q = random_cactus(1, rng, min_len=4, max_len=4)
        assert q.k == 4 and q.num_edges() == 4


class TestMixedSampler:
    def test_respects_max_k(self, rng):
        for _ in range(40):
            q = random_tw2_query(rng, max_k=8)
            assert q.k <= 8
            assert is_treewidth_at_most_2(q)

    def test_decomposable_and_countable(self, rng):
        """End-to-end fuzz: every generated query decomposes, validates
        and counts identically under PS/DB/brute force."""
        from repro.counting import count_colorful_matches
        from repro.decomposition import build_decomposition, validate_plan
        from repro.engine import CountingEngine
        from repro.graph import erdos_renyi

        for _ in range(12):
            q = random_tw2_query(rng, max_k=7)
            plan = build_decomposition(q)
            validate_plan(plan)
            g = erdos_renyi(8, 0.5, rng)
            colors = rng.integers(0, q.k, size=g.n)
            expected = count_colorful_matches(g, q, colors)
            engine = CountingEngine(g)
            assert engine.count_colorful(q, colors, method="ps", plan=plan) == expected
            assert engine.count_colorful(q, colors, method="db", plan=plan) == expected
