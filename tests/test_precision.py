"""Adaptive-precision API: PrecisionSpec, the streaming accumulator,
the stopping rule, fingerprint canonicalisation, wire v2, and the
service/CLI precision surfaces.

The load-bearing invariant throughout: with ``rel_error=None`` the
precision path is *inert* — a bare ``trials=N`` request, the
``PrecisionSpec.fixed(N)`` desugaring, and a pre-precision caller all
produce bit-identical colorful counts and identical cache keys.  The
cross-backend half of that invariant lives in
``test_differential_matrix.py``; here we pin the single-backend pieces
(prefix determinism, fingerprint collapse, accumulator parity).
"""

from __future__ import annotations

import argparse
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _parse_precision
from repro.counting.colorings import coloring_batch, coloring_stream
from repro.counting.estimator import EstimateResult, StreamingEstimate
from repro.engine import CountingEngine, EngineConfig, PrecisionSpec
from repro.engine.config import CountRequest
from repro.engine.fingerprint import canonical_request, request_fingerprint
from repro.engine.result import RunResult
from repro.graph.generators import erdos_renyi
from repro.query.library import paper_query
from repro.service import BadRequestError, CountingService
from repro.theory.bounds import (
    chebyshev_halfwidth,
    estimator_relative_variance_bound,
    normal_quantile,
    required_trials,
    student_t_quantile,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, np.random.default_rng(7), name="er60")


# ---------------------------------------------------------------------------
# PrecisionSpec: validation and the coerce grammar
# ---------------------------------------------------------------------------
class TestPrecisionSpec:
    def test_defaults_are_fixed_mode(self):
        spec = PrecisionSpec()
        assert spec.rel_error is None
        assert not spec.is_adaptive

    def test_fixed_runs_exactly_n(self):
        spec = PrecisionSpec.fixed(7)
        assert spec.min_trials == spec.max_trials == 7
        assert spec.rel_error is None and not spec.is_adaptive

    @pytest.mark.parametrize("bad", [
        dict(min_trials=0),
        dict(max_trials=0),
        dict(min_trials=5, max_trials=3),
        dict(rel_error=0.0),
        dict(rel_error=-0.1),
        dict(rel_error=0.05, confidence=0.0),
        dict(rel_error=0.05, confidence=1.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            PrecisionSpec(**bad)

    def test_coerce_int_is_fixed_sugar(self):
        assert PrecisionSpec.coerce(7) == PrecisionSpec.fixed(7)

    def test_coerce_spec_is_identity(self):
        spec = PrecisionSpec(rel_error=0.05)
        assert PrecisionSpec.coerce(spec) is spec

    def test_coerce_rejects_bool(self):
        # bool is an int subclass: `precision=True` is always a bug
        with pytest.raises(ValueError, match="PrecisionSpec, int, or mapping"):
            PrecisionSpec.coerce(True)

    def test_coerce_rejects_garbage_types(self):
        with pytest.raises(ValueError, match="got str"):
            PrecisionSpec.coerce("0.05")

    def test_coerce_mapping_full(self):
        spec = PrecisionSpec.coerce(
            {"rel_error": 0.1, "confidence": 0.9, "min_trials": 5, "max_trials": 50}
        )
        assert spec == PrecisionSpec(0.1, 0.9, 5, 50)
        assert spec.is_adaptive

    def test_coerce_mapping_unknown_keys(self):
        with pytest.raises(ValueError, match=r"unknown precision field\(s\): \['bogus'\]"):
            PrecisionSpec.coerce({"rel_error": 0.05, "bogus": 1})

    def test_coerce_mapping_min_only_is_fixed(self):
        # fixed-mode mapping naming only min_trials runs exactly that many
        spec = PrecisionSpec.coerce({"min_trials": 4})
        assert spec == PrecisionSpec.fixed(4)

    def test_coerce_mapping_rel_only_keeps_defaults(self):
        spec = PrecisionSpec.coerce({"rel_error": 0.05})
        assert spec.confidence == 0.95
        assert spec.is_adaptive

    def test_adaptivity_needs_headroom(self):
        # rel_error set but min == max: the rule can never change anything
        spec = PrecisionSpec(rel_error=0.05, min_trials=8, max_trials=8)
        assert not spec.is_adaptive

    def test_to_dict_coerce_round_trip(self):
        spec = PrecisionSpec(rel_error=0.02, confidence=0.99, min_trials=4, max_trials=64)
        assert PrecisionSpec.coerce(spec.to_dict()) == spec

    def test_request_effective_precision(self):
        q = paper_query("glet1")
        assert CountRequest(q, trials=6).effective_precision() == PrecisionSpec.fixed(6)
        spec = PrecisionSpec(rel_error=0.05)
        # explicit precision wins over the bare trials knob
        assert CountRequest(q, trials=6, precision=spec).effective_precision() is spec


# ---------------------------------------------------------------------------
# StreamingEstimate vs the batch EstimateResult: fuzzed parity
# ---------------------------------------------------------------------------
class TestStreamingAccumulator:
    @given(counts=st.lists(st.integers(min_value=0, max_value=10**6),
                           min_size=1, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_matches_batch_statistics(self, counts):
        scale = 3.375  # k=3 normalization: 27/8
        stream = StreamingEstimate(scale)
        for c in counts:
            stream.push(c)
        batch = EstimateResult("q", "g", len(counts), list(counts), scale)
        assert stream.trials == batch.trials
        assert stream.colorful_mean == pytest.approx(batch.colorful_mean, rel=1e-12)
        assert stream.colorful_variance == pytest.approx(
            batch.colorful_variance, rel=1e-9, abs=1e-9
        )
        assert stream.estimate == pytest.approx(batch.estimate, rel=1e-12)

    @given(counts=st.lists(st.integers(min_value=1, max_value=10**4),
                           min_size=2, max_size=40).filter(lambda c: len(set(c)) > 1))
    @settings(max_examples=100, deadline=None)
    def test_t_interval_brackets_estimate(self, counts):
        stream = StreamingEstimate(2.0)
        for c in counts:
            stream.push(c)
        hw = stream.relative_halfwidth(0.95)
        assert 0.0 < hw < math.inf
        lo, hi = stream.interval(0.95)
        assert lo <= stream.estimate <= hi
        assert hi - lo == pytest.approx(
            min(2 * hw * stream.estimate, hi - lo), rel=1e-12
        )  # clamping below zero can only shrink the printed interval

    def test_degenerate_without_bound_is_infinite(self):
        stream = StreamingEstimate(1.0)
        stream.push(5)
        assert math.isinf(stream.relative_halfwidth())
        assert stream.interval() == (0.0, math.inf)

    def test_degenerate_with_bound_uses_chebyshev(self):
        bound = estimator_relative_variance_bound(3, 3)
        stream = StreamingEstimate(1.0, rel_variance_bound=bound)
        for _ in range(4):
            stream.push(7)  # all-equal prefix: empirical variance is zero
        assert stream.relative_halfwidth(0.95) == pytest.approx(
            chebyshev_halfwidth(bound, 4, 0.95)
        )

    def test_precision_met_validates(self):
        stream = StreamingEstimate(1.0)
        with pytest.raises(ValueError, match="rel_error must be positive"):
            stream.precision_met(0.0)
        with pytest.raises(ValueError, match="confidence"):
            stream.relative_halfwidth(1.5)

    def test_theory_helpers_sane(self):
        # the normal quantile inverts the CDF at well-known points
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        # Student-t approaches the normal as dof grows, exceeds it at small dof
        assert student_t_quantile(0.975, 10**6) == pytest.approx(1.959964, abs=1e-3)
        assert student_t_quantile(0.975, 3) > normal_quantile(0.975)
        # a tighter target can only demand more trials
        assert required_trials(1.0, 0.1, 0.95) >= required_trials(1.0, 0.2, 0.95)


# ---------------------------------------------------------------------------
# Prefix determinism: the stream is the batch
# ---------------------------------------------------------------------------
class TestColoringPrefix:
    @pytest.mark.parametrize("strategy", ["uniform", "balanced"])
    def test_stream_prefix_equals_batch(self, strategy):
        n, k, seed = 37, 4, 11
        stream = coloring_stream(n, k, seed, strategy)
        drawn = [next(stream) for _ in range(9)]
        for t in (1, 4, 9):
            batch = coloring_batch(n, k, t, seed, strategy)
            for a, b in zip(drawn[:t], batch):
                assert np.array_equal(a, b)

    def test_stream_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown coloring strategy"):
            next(coloring_stream(10, 3, 0, "spiral"))


# ---------------------------------------------------------------------------
# The adaptive scheduler in the engine
# ---------------------------------------------------------------------------
class TestAdaptiveScheduling:
    def test_early_stop_under_loose_target(self, graph):
        spec = PrecisionSpec(rel_error=0.5, min_trials=3, max_trials=100)
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            result = engine.count(paper_query("glet1"), method="ps", precision=spec)
        assert result.stopped_early
        assert spec.min_trials <= result.trials_used < spec.max_trials
        assert result.trials == result.trials_used == len(result.colorful_counts)
        assert result.ci_low is not None and result.ci_high is not None
        assert result.ci_low <= result.estimate <= result.ci_high
        hw = (result.ci_high - result.ci_low) / (2 * result.estimate)
        assert hw <= 0.5 * (1 + 1e-9)

    def test_cap_binds_under_impossible_target(self, graph):
        spec = PrecisionSpec(rel_error=1e-9, min_trials=3, max_trials=6)
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            result = engine.count(paper_query("glet1"), method="ps", precision=spec)
        assert not result.stopped_early
        assert result.trials_used == 6

    def test_min_trials_floor_holds(self, graph):
        # a target so loose one trial would satisfy it still runs the floor
        spec = PrecisionSpec(rel_error=50.0, min_trials=5, max_trials=100)
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            result = engine.count(paper_query("glet1"), method="ps", precision=spec)
        assert result.trials_used >= 5

    def test_adaptive_prefix_bit_identical_to_fixed(self, graph):
        """The first N adaptive trials ARE the fixed-N trials."""
        spec = PrecisionSpec(rel_error=0.5, min_trials=3, max_trials=100)
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            adaptive = engine.count(paper_query("glet1"), method="ps", precision=spec)
            fixed = engine.count(
                paper_query("glet1"), method="ps", trials=adaptive.trials_used
            )
        assert adaptive.colorful_counts == fixed.colorful_counts
        assert adaptive.estimate == fixed.estimate

    def test_fixed_precision_matches_bare_trials(self, graph):
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            bare = engine.count(paper_query("glet2"), method="ps-vec", trials=4)
            sugar = engine.count(
                paper_query("glet2"), method="ps-vec", precision=PrecisionSpec.fixed(4)
            )
            as_int = engine.count(paper_query("glet2"), method="ps-vec", precision=4)
        assert bare.colorful_counts == sugar.colorful_counts == as_int.colorful_counts
        assert not bare.stopped_early and not sugar.stopped_early

    def test_progress_callback_sees_monotone_refinement(self, graph):
        snapshots = []
        spec = PrecisionSpec(rel_error=0.3, min_trials=3, max_trials=60)
        with CountingEngine(graph, EngineConfig(seed=0)) as engine:
            engine.count(
                paper_query("glet1"), method="ps", precision=spec,
                on_progress=snapshots.append,
            )
        assert snapshots, "adaptive runs must report progress"
        done = [int(s["trials_done"]) for s in snapshots]
        assert done == sorted(done) and done[0] >= 1
        last = snapshots[-1]
        assert last["target_rel_error"] == 0.3
        assert last["max_trials"] == 60
        assert {"estimate", "ci_low", "ci_high", "rel_halfwidth"} <= set(last)


# ---------------------------------------------------------------------------
# Fingerprint canonicalisation: fixed collapses, adaptive separates
# ---------------------------------------------------------------------------
class TestFingerprintCanonicalisation:
    def test_fixed_spellings_share_a_key(self):
        q = paper_query("glet1")
        bare = request_fingerprint("d", CountRequest(q, trials=7))
        sugar = request_fingerprint("d", CountRequest(q, precision=PrecisionSpec.fixed(7)))
        as_int = request_fingerprint("d", CountRequest(q, precision=7))
        assert bare == sugar == as_int

    def test_fixed_doc_has_no_precision_key(self):
        # pre-precision cache keys must be byte-identical: no new key
        q = paper_query("glet1")
        doc = canonical_request("d", CountRequest(q, precision=PrecisionSpec.fixed(7)))
        assert doc["trials"] == 7
        assert "precision" not in doc

    def test_adaptive_never_aliases_fixed(self):
        q = paper_query("glet1")
        spec = PrecisionSpec(rel_error=0.05, max_trials=7)
        adaptive = request_fingerprint("d", CountRequest(q, precision=spec))
        fixed = request_fingerprint("d", CountRequest(q, trials=7))
        assert adaptive != fixed
        doc = canonical_request("d", CountRequest(q, precision=spec))
        assert doc["precision"] == spec.to_dict()
        assert doc["trials"] == spec.max_trials  # bare knob pinned to the cap

    def test_bare_trials_knob_cannot_split_adaptive_keys(self):
        q = paper_query("glet1")
        spec = PrecisionSpec(rel_error=0.05, max_trials=50)
        a = request_fingerprint("d", CountRequest(q, trials=3, precision=spec))
        b = request_fingerprint("d", CountRequest(q, trials=9, precision=spec))
        assert a == b

    def test_distinct_targets_distinct_keys(self):
        q = paper_query("glet1")
        a = request_fingerprint("d", CountRequest(q, precision=PrecisionSpec(rel_error=0.05)))
        b = request_fingerprint("d", CountRequest(q, precision=PrecisionSpec(rel_error=0.1)))
        assert a != b


# ---------------------------------------------------------------------------
# RunResult wire v2 (and v1 acceptance)
# ---------------------------------------------------------------------------
class TestWireVersion2:
    def _result(self) -> RunResult:
        return RunResult(
            query_name="q", graph_name="g", trials=5,
            colorful_counts=[3, 4, 5, 4, 3], scale=3.375,
            method="ps", seed=1, num_colors=3,
            trials_used=5, stopped_early=True,
            ci_low=10.0, ci_high=20.0,
        )

    def test_v2_round_trip_preserves_adaptive_fields(self):
        doc = self._result().to_dict()
        assert doc["wire_version"] == 2
        back = RunResult.from_dict(doc)
        assert back.trials_used == 5 and back.stopped_early
        assert back.ci_low == 10.0 and back.ci_high == 20.0
        assert back.to_dict() == doc  # serialize-again fixpoint

    def test_v1_documents_still_load(self):
        doc = self._result().to_dict()
        for key in ("wire_version", "trials_used", "stopped_early",
                    "ci_low", "ci_high"):
            del doc[key]
        back = RunResult.from_dict(doc)
        # v1 reading: a fixed run that spent exactly its trial budget
        assert back.trials_used == back.trials == 5
        assert not back.stopped_early
        assert back.ci_low is None and back.ci_high is None

    def test_future_versions_rejected(self):
        doc = self._result().to_dict()
        doc["wire_version"] = 3
        with pytest.raises(ValueError, match="unsupported RunResult wire_version 3"):
            RunResult.from_dict(doc)


# ---------------------------------------------------------------------------
# Service surface: coercion, eager 400s, progress, cache identity
# ---------------------------------------------------------------------------
@pytest.fixture()
def service(graph):
    svc = CountingService(
        config=EngineConfig(trials=2, seed=0),
        workers=2, queue_depth=16, cache_size=64,
    )
    svc.registry.add("tiny", graph)
    yield svc
    svc.close()


class TestServicePrecision:
    def test_adaptive_request_round_trips(self, service):
        result, cached = service.count(
            "tiny", "glet1",
            precision={"rel_error": 0.5, "min_trials": 3, "max_trials": 50},
        )
        assert not cached
        assert result.stopped_early and result.trials_used < 50
        assert result.ci_low is not None
        again, cached = service.count(
            "tiny", "glet1",
            precision={"rel_error": 0.5, "min_trials": 3, "max_trials": 50},
        )
        assert cached and again is result

    def test_precision_int_and_bare_trials_share_cache(self, service):
        a, _ = service.count("tiny", "glet2", precision=3, seed=5)
        b, cached = service.count("tiny", "glet2", trials=3, seed=5)
        assert cached and b is a

    @pytest.mark.parametrize("bad", [
        {"rel_error": -0.05},
        {"rel_error": 0.05, "confidence": 2.0},
        {"rel_error": 0.05, "bogus": 1},
        {"min_trials": 10, "max_trials": 2},
        "five percent",
        True,
    ])
    def test_malformed_precision_is_eager_400(self, bad, service):
        with pytest.raises(BadRequestError, match="precision"):
            service.count("tiny", "glet1", precision=bad)

    def test_unbounded_cap_is_eager_400(self, service):
        # the adaptive cap is bounded like the legacy trials knob
        with pytest.raises(BadRequestError, match="max_trials"):
            service.count(
                "tiny", "glet1",
                precision={"rel_error": 0.05, "max_trials": 100_000_000},
            )

    def test_async_job_exposes_progress_detail(self, service):
        job = service.submit(
            "tiny", "glet1",
            precision={"rel_error": 0.5, "min_trials": 3, "max_trials": 50},
        )
        assert job.wait(30.0) and job.state == "done"
        doc = job.to_dict()
        detail = doc.get("progress_detail")
        assert detail is not None
        assert detail["trials_done"] >= 1
        assert {"estimate", "ci_low", "ci_high", "rel_halfwidth",
                "target_rel_error"} <= set(detail)
        assert job.progress == 1.0


# ---------------------------------------------------------------------------
# CLI flag parsing
# ---------------------------------------------------------------------------
def _ns(rel_error=None, confidence=0.95, min_trials=None, max_trials=None):
    return argparse.Namespace(
        rel_error=rel_error, confidence=confidence,
        min_trials=min_trials, max_trials=max_trials,
    )


class TestCliPrecisionFlags:
    def test_no_flags_means_no_spec(self):
        assert _parse_precision(_ns()) is None

    def test_rel_error_builds_adaptive_spec(self):
        spec = _parse_precision(_ns(rel_error=0.05, confidence=0.9))
        assert spec == PrecisionSpec(rel_error=0.05, confidence=0.9)
        assert spec.is_adaptive

    def test_trial_bounds_without_target_stay_fixed(self):
        spec = _parse_precision(_ns(min_trials=4))
        assert spec == PrecisionSpec.fixed(4)

    def test_full_flag_set(self):
        spec = _parse_precision(
            _ns(rel_error=0.1, confidence=0.99, min_trials=5, max_trials=80)
        )
        assert spec == PrecisionSpec(0.1, 0.99, 5, 80)

    def test_bad_combination_raises_value_error(self):
        with pytest.raises(ValueError):
            _parse_precision(_ns(min_trials=10, max_trials=2))

    def test_count_command_end_to_end(self, capsys):
        from repro.cli import main
        rc = main([
            "count", "--graph", "roadnetca", "--query", "glet1",
            "--method", "ps-vec", "--rel-error", "0.5", "--max-trials", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "early stop, cap 50" in out
        assert "95% CI" in out

    def test_count_command_rejects_bad_bounds(self, capsys):
        from repro.cli import main
        rc = main([
            "count", "--graph", "roadnetca", "--query", "glet1",
            "--min-trials", "10", "--max-trials", "2",
        ])
        assert rc == 2
        assert "max_trials" in capsys.readouterr().err
