"""Repository-hygiene tests: docs exist, public API is importable/documented."""

import importlib
import inspect
import os

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SUBPACKAGES = [
    "repro.graph",
    "repro.query",
    "repro.decomposition",
    "repro.tables",
    "repro.counting",
    "repro.distributed",
    "repro.theory",
    "repro.motifs",
    "repro.bench",
]


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "fname",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
         "docs/ALGORITHMS.md", "docs/API.md"],
    )
    def test_file_present_and_nonempty(self, fname):
        path = os.path.join(REPO_ROOT, fname)
        assert os.path.exists(path), fname
        assert os.path.getsize(path) > 200, fname

    def test_design_covers_every_figure(self):
        text = open(os.path.join(REPO_ROOT, "DESIGN.md"), encoding="utf-8").read()
        for fig in ["Table 1", "Fig 8", "Fig 9", "Fig 10", "Fig 11",
                    "Fig 12", "Fig 13", "Fig 14", "Fig 15"]:
            assert fig in text, fig

    def test_experiments_covers_every_figure(self):
        text = open(os.path.join(REPO_ROOT, "EXPERIMENTS.md"), encoding="utf-8").read()
        for fig in ["Table 1", "Figure 8", "Figure 9", "Figure 10",
                    "Figure 11", "Figure 12", "Figure 13", "Figure 14",
                    "Figure 15", "Section 9"]:
            assert fig in text, fig


class TestPublicApi:
    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_subpackage_imports(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__, f"{modname} missing a module docstring"
        assert hasattr(mod, "__all__"), f"{modname} missing __all__"

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_all_exports_exist_and_documented(self, modname):
        mod = importlib.import_module(modname)
        for name in mod.__all__:
            obj = getattr(mod, name, None)
            assert obj is not None, f"{modname}.{name} exported but missing"
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{modname}.{name} lacks a docstring"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestExamplesPresent:
    def test_at_least_five_examples(self):
        examples = os.path.join(REPO_ROOT, "examples")
        scripts = [f for f in os.listdir(examples) if f.endswith(".py")]
        assert len(scripts) >= 5
        assert "quickstart.py" in scripts

    def test_examples_have_docstrings(self):
        examples = os.path.join(REPO_ROOT, "examples")
        for fname in os.listdir(examples):
            if fname.endswith(".py"):
                text = open(os.path.join(examples, fname), encoding="utf-8").read()
                assert text.lstrip().startswith(('"""', "#!")), fname


class TestBenchCoverage:
    def test_one_bench_per_figure(self):
        benches = os.listdir(os.path.join(REPO_ROOT, "benchmarks"))
        expected = [
            "bench_table1_graphs.py",
            "bench_fig8_queries.py",
            "bench_fig9_runtime.py",
            "bench_fig10_improvement.py",
            "bench_fig11_load.py",
            "bench_fig12_speedup.py",
            "bench_fig13_scaling.py",
            "bench_fig14_heuristic.py",
            "bench_fig15_precision.py",
            "bench_theory_xy.py",
            "bench_ablation.py",
            "bench_extension_colors.py",
        ]
        for fname in expected:
            assert fname in benches, fname
