"""Tests for the num_colors > k variance-reduction extension."""


import numpy as np
import pytest

from repro.counting import count_colorful_matches, count_matches, estimate_matches
from repro.counting.estimator import normalization_factor
from repro.counting.solver import solve_plan
from repro.decomposition import build_decomposition
from repro.graph import Graph, erdos_renyi
from repro.query import cycle_query, paper_query


class TestNormalizationFactor:
    def test_default_matches_paper(self):
        for k in range(2, 7):
            assert normalization_factor(k) == normalization_factor(k, k)

    def test_extended_values(self):
        # c=4, k=3: 4^3 / (4*3*2)
        assert normalization_factor(3, 4) == pytest.approx(64 / 24)
        # c=5, k=2: 25 / 20
        assert normalization_factor(2, 5) == pytest.approx(1.25)

    def test_monotone_in_colors(self):
        # more colors -> colorful more likely -> smaller scale factor
        factors = [normalization_factor(4, c) for c in range(4, 10)]
        assert factors == sorted(factors, reverse=True)

    def test_rejects_too_few_colors(self):
        with pytest.raises(ValueError):
            normalization_factor(4, 3)


class TestSolverWithExtraColors:
    def test_matches_bruteforce(self, rng):
        g = erdos_renyi(10, 0.45, rng)
        q = cycle_query(4)
        plan = build_decomposition(q)
        colors = rng.integers(0, 7, size=g.n)  # 7 colors, k=4
        expected = count_colorful_matches(g, q, colors)
        for method in ("ps", "db"):
            assert solve_plan(plan, g, colors, method=method, num_colors=7) == expected

    def test_rejects_insufficient_palette(self, triangle_graph):
        q = cycle_query(3)
        plan = build_decomposition(q)
        with pytest.raises(ValueError, match="colors"):
            solve_plan(plan, triangle_graph, np.array([0, 1, 2]), num_colors=2)

    def test_rejects_out_of_palette_color(self, triangle_graph):
        q = cycle_query(3)
        plan = build_decomposition(q)
        with pytest.raises(ValueError):
            solve_plan(plan, triangle_graph, np.array([0, 1, 5]), num_colors=4)


class TestExactUnbiasednessExtended:
    def test_expectation_identity_with_extra_colors(self):
        """Enumerate ALL c^n colorings with c > k: the corrected scale
        makes the estimator exactly unbiased."""
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        q = cycle_query(3)
        c = 4
        total = 0
        plan = build_decomposition(q)
        for code in range(c**3):
            colors = np.array([(code // c**i) % c for i in range(3)])
            total += solve_plan(plan, g, colors, num_colors=c)
        expectation = total / c**3
        estimate = normalization_factor(3, c) * expectation
        assert estimate == pytest.approx(count_matches(g, q), rel=1e-12)


class TestVarianceReduction:
    def test_more_colors_less_variance(self, rng):
        g = erdos_renyi(22, 0.3, rng, name="er22")
        q = paper_query("glet1")
        base = estimate_matches(g, q, trials=30, seed=4)
        wide = estimate_matches(g, q, trials=30, seed=4, num_colors=2 * q.k)
        # identical seeds, more colors: relative spread should shrink
        assert wide.relative_std < base.relative_std

    def test_estimates_agree(self, rng):
        g = erdos_renyi(22, 0.3, rng)
        q = cycle_query(3)
        exact = count_matches(g, q)
        wide = estimate_matches(g, q, trials=50, seed=5, num_colors=9)
        assert wide.estimate == pytest.approx(exact, rel=0.35)
