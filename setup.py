"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim lets
``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the classic setuptools code path.
"""

from setuptools import setup

setup()
