"""Setuptools configuration (classic code path).

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs (which build a wheel) fail.  This
classic ``setup.py`` keeps ``python setup.py develop`` /
``pip install -e . --no-build-isolation`` working while declaring the
full package metadata: the ``repro-count`` console script and the
``numpy`` runtime requirement.
"""

import os

from setuptools import find_packages, setup


def _readme() -> str:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "README.md")
    try:
        with open(path, encoding="utf-8") as fh:
            return fh.read()
    except OSError:
        return ""


setup(
    name="repro-color-coding",
    version="1.1.0",
    description=(
        "Reproduction of 'Subgraph Counting: Color Coding Beyond Trees' "
        "(IPDPS 2016): treewidth-2 subgraph counting with the DB algorithm"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "dev": ["pytest>=7", "pytest-benchmark", "pytest-cov", "hypothesis", "ruff", "mypy"],
    },
    entry_points={
        "console_scripts": [
            "repro-count=repro.cli:main",
            "repro-serve=repro.service.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering",
    ],
)
